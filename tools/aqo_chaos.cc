// aqo_chaos — deterministic fault-schedule driver for aqo_serve.
//
// Reads a pre-generated request stream (aqo_loadgen --out=) and drives a
// forked aqo_serve through it under one of four fault scenarios, checking
// after each that the server behaved by the robustness contract
// (docs/robustness.md): it stays up, every surviving request's response
// is byte-identical to a fault-free run, and recovered state replays
// cleanly. Every schedule is a pure function of the flags — a failing
// scenario reproduces with the same command line.
//
//   --scenario=persist-sweep --site=persist.append|persist.fsync|persist.snapshot
//       For ordinal 0, 1, ... arms --fault=<site>@<ordinal> in the
//       server, runs the full stream against a fresh state dir, and
//       checks (a) responses byte-identical to the fault-free reference,
//       (b) a warm restart on the surviving state dir also reproduces
//       the reference. The sweep ends at the first ordinal the fault
//       never fires (detected via the `health` verb's trips counter) —
//       exhaustive by construction, like tests/persist_crash_test.cc but
//       across a real process boundary with the circuit breaker armed.
//
//   --scenario=kill-restart --kill-after=<k>
//       SIGKILLs the server after the k-th response, restarts it warm on
//       the same state dir, replays the whole stream, and requires every
//       response byte-identical to the reference (torn journal tails
//       included in what restart must tolerate).
//
//   --scenario=frame-garbage --garbage-every=<g> --garbage-bytes=<b>
//       Injects b seeded garbage bytes after every g-th frame. The
//       server must answer one `err ?` resync frame per injection and
//       every real response must still match the reference.
//
//   --scenario=burst-shed --overload-args="--overload-queue-cap=..."
//       Runs the governed server twice over the same stream: the two
//       response streams must be byte-identical (deterministic shed set),
//       at least one shed and one degrade must occur, and every
//       non-shed, non-degraded response must match the ungoverned
//       reference.
//
// Exit status 0 = scenario held; 1 = a check failed (details on stderr).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "io/framing.h"
#include "util/check.h"
#include "util/random.h"

namespace aqo {
namespace {

std::vector<std::string> LoadStream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open --stream=" << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> frames;
  std::string payload;
  std::string error;
  for (;;) {
    FrameRead read = ReadFrame(in, &payload, &error);
    if (read == FrameRead::kEof) break;
    if (read == FrameRead::kError) {
      std::cerr << "error: " << path << ": " << error << "\n";
      std::exit(2);
    }
    frames.push_back(payload);
  }
  if (frames.empty()) {
    std::cerr << "error: " << path << " holds no request frames\n";
    std::exit(2);
  }
  return frames;
}

// Garbage bytes keep their high bit set so no clean 4-byte window decodes
// to a plausible frame length and no payload starts with a protocol verb
// — the reader must resynchronize by sliding, which is the path under
// test.
std::string GarbageBytes(uint64_t seed, size_t index, int count) {
  Rng rng(MixSeed(seed, static_cast<uint64_t>(index)));
  std::string bytes(static_cast<size_t>(count), '\0');
  for (char& c : bytes) {
    c = static_cast<char>(0x80 + rng.UniformInt(0, 127));
  }
  return bytes;
}

struct ServerRun {
  std::vector<std::string> responses;
  int wait_status = 0;
  bool exited_clean() const {
    return WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  }
};

struct RunOptions {
  // Raw bytes appended after frame i (garbage injection); empty = none.
  uint64_t garbage_seed = 0;
  int garbage_every = 0;  // inject after every g-th frame; 0 = off
  int garbage_bytes = 0;
  // SIGKILL the server after this many responses; -1 = never.
  int kill_after = -1;
};

ServerRun RunServer(const std::string& serve_path,
                    const std::vector<std::string>& args,
                    const std::vector<std::string>& frames,
                    const RunOptions& run = {}) {
  int to_server[2];
  int from_server[2];
  AQO_CHECK(::pipe(to_server) == 0 && ::pipe(from_server) == 0);
  pid_t pid = ::fork();
  AQO_CHECK(pid >= 0);
  if (pid == 0) {
    ::dup2(to_server[0], STDIN_FILENO);
    ::dup2(from_server[1], STDOUT_FILENO);
    ::close(to_server[0]);
    ::close(to_server[1]);
    ::close(from_server[0]);
    ::close(from_server[1]);
    std::vector<std::string> arg_strings;
    arg_strings.push_back(serve_path);
    arg_strings.insert(arg_strings.end(), args.begin(), args.end());
    std::vector<char*> argv;
    for (std::string& a : arg_strings) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(serve_path.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(to_server[0]);
  ::close(from_server[1]);

  // Open-loop writer, like aqo_loadgen's: the whole schedule goes out
  // regardless of response progress. A SIGKILLed server turns writes into
  // EPIPE, which the writer just swallows (SIGPIPE is ignored in main).
  std::thread writer([&] {
    for (size_t i = 0; i < frames.size(); ++i) {
      if (!WriteFrameFd(to_server[1], frames[i])) break;
      if (run.garbage_every > 0 && i + 1 < frames.size() &&
          (i + 1) % static_cast<size_t>(run.garbage_every) == 0) {
        std::string garbage =
            GarbageBytes(run.garbage_seed, i, run.garbage_bytes);
        if (!WriteAllFd(to_server[1], garbage.data(), garbage.size())) break;
      }
    }
    ::close(to_server[1]);
  });

  ServerRun result;
  std::string payload;
  for (;;) {
    int read = ReadFrameFd(from_server[0], &payload);
    if (read <= 0) break;
    result.responses.push_back(payload);
    if (run.kill_after >= 0 &&
        result.responses.size() == static_cast<size_t>(run.kill_after)) {
      ::kill(pid, SIGKILL);
    }
  }
  writer.join();
  ::close(from_server[0]);
  ::waitpid(pid, &result.wait_status, 0);
  return result;
}

std::vector<std::string> SplitArgs(const std::string& text) {
  std::vector<std::string> args;
  std::istringstream split(text);
  for (std::string a; split >> a;) args.push_back(a);
  return args;
}

// Pulls "<key>=<value>" off a space-separated health/ping response; 0 if
// absent.
uint64_t ParseCounter(const std::string& response, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = response.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(response.c_str() + pos + needle.size(), nullptr, 10);
}

bool CheckIdentical(const std::vector<std::string>& got,
                    const std::vector<std::string>& want,
                    const std::string& what) {
  if (got.size() != want.size()) {
    std::cerr << "FAIL " << what << ": " << got.size() << " responses, want "
              << want.size() << "\n";
    return false;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      std::cerr << "FAIL " << what << ": response " << i << " diverged\n  got:  "
                << got[i].substr(0, 200) << "\n  want: "
                << want[i].substr(0, 200) << "\n";
      return false;
    }
  }
  return true;
}

std::string FreshDir(const std::string& root, const std::string& leaf) {
  std::string dir = root + "/" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- scenarios ---

int RunPersistSweep(const std::string& serve_path,
                    const std::vector<std::string>& base_args,
                    const std::vector<std::string>& frames,
                    const std::vector<std::string>& reference,
                    const std::string& site, const std::string& state_root,
                    int max_ordinal) {
  // One extra health frame rides at the end of every faulted run so the
  // sweep can read the breaker trip counter; it is not part of the
  // reference comparison.
  std::vector<std::string> probed = frames;
  probed.push_back("health hz");

  bool swept_past_last_probe = false;
  for (int ordinal = 0; ordinal <= max_ordinal; ++ordinal) {
    std::string dir = FreshDir(state_root, site + "_" +
                                               std::to_string(ordinal));
    std::vector<std::string> args = base_args;
    args.push_back("--cache-dir=" + dir);
    args.push_back("--fault=" + site + "@" + std::to_string(ordinal));
    ServerRun faulted = RunServer(serve_path, args, probed);
    if (faulted.responses.size() != probed.size()) {
      std::cerr << "FAIL persist-sweep " << site << "@" << ordinal << ": "
                << faulted.responses.size() << " responses, want "
                << probed.size() << "\n";
      return 1;
    }
    std::vector<std::string> real(faulted.responses.begin(),
                                  faulted.responses.end() - 1);
    if (!CheckIdentical(real, reference,
                        "persist-sweep " + site + "@" +
                            std::to_string(ordinal))) {
      return 1;
    }
    uint64_t trips = ParseCounter(faulted.responses.back(), "trips");
    if (trips == 0) {
      // This ordinal was past the last live probe: the site's every
      // crash point has been swept.
      if (ordinal == 0) {
        std::cerr << "FAIL persist-sweep: " << site
                  << " never fired — wrong site name?\n";
        return 1;
      }
      swept_past_last_probe = true;
      std::filesystem::remove_all(dir);
      break;
    }
    // Whatever the faulted run left on disk must warm-start into a run
    // that reproduces the reference bit-for-bit.
    std::vector<std::string> warm_args = base_args;
    warm_args.push_back("--cache-dir=" + dir);
    ServerRun warm = RunServer(serve_path, warm_args, frames);
    if (!warm.exited_clean() ||
        !CheckIdentical(warm.responses, reference,
                        "persist-sweep warm restart " + site + "@" +
                            std::to_string(ordinal))) {
      return 1;
    }
    std::filesystem::remove_all(dir);
    std::cerr << "aqo_chaos: " << site << "@" << ordinal
              << " trips=" << trips << " ok\n";
  }
  if (!swept_past_last_probe) {
    std::cerr << "FAIL persist-sweep: " << site << " still firing at ordinal "
              << max_ordinal << "\n";
    return 1;
  }
  return 0;
}

int RunKillRestart(const std::string& serve_path,
                   const std::vector<std::string>& base_args,
                   const std::vector<std::string>& frames,
                   const std::vector<std::string>& reference,
                   const std::string& state_root, int kill_after) {
  std::string dir = FreshDir(state_root, "kill_restart");
  std::vector<std::string> args = base_args;
  args.push_back("--cache-dir=" + dir);

  RunOptions kill;
  kill.kill_after = kill_after;
  ServerRun first = RunServer(serve_path, args, frames, kill);
  if (!WIFSIGNALED(first.wait_status) ||
      WTERMSIG(first.wait_status) != SIGKILL) {
    std::cerr << "FAIL kill-restart: server was not killed (status "
              << first.wait_status << ", " << first.responses.size()
              << " responses before exit)\n";
    return 1;
  }
  // The responses that did come back must match the reference prefix —
  // dying must not corrupt in-flight answers.
  std::vector<std::string> prefix(
      reference.begin(),
      reference.begin() +
          static_cast<ptrdiff_t>(std::min(first.responses.size(),
                                          reference.size())));
  if (!CheckIdentical(first.responses, prefix, "kill-restart prefix")) {
    return 1;
  }

  // Restart warm on whatever the kill left behind (journal likely has a
  // torn tail) and replay everything.
  ServerRun second = RunServer(serve_path, args, frames);
  if (!second.exited_clean()) {
    std::cerr << "FAIL kill-restart: warm restart exited "
              << second.wait_status << "\n";
    return 1;
  }
  if (!CheckIdentical(second.responses, reference, "kill-restart replay")) {
    return 1;
  }
  std::filesystem::remove_all(dir);
  std::cerr << "aqo_chaos: kill-restart after " << first.responses.size()
            << " responses ok\n";
  return 0;
}

int RunFrameGarbage(const std::string& serve_path,
                    const std::vector<std::string>& base_args,
                    const std::vector<std::string>& frames,
                    const std::vector<std::string>& reference,
                    uint64_t seed, int garbage_every, int garbage_bytes) {
  RunOptions garble;
  garble.garbage_seed = seed;
  garble.garbage_every = garbage_every;
  garble.garbage_bytes = garbage_bytes;
  ServerRun run = RunServer(serve_path, base_args, frames, garble);
  if (!run.exited_clean()) {
    std::cerr << "FAIL frame-garbage: server exited " << run.wait_status
              << "\n";
    return 1;
  }
  size_t injections =
      garbage_every > 0 ? (frames.size() - 1) / static_cast<size_t>(
                                                    garbage_every)
                        : 0;
  std::vector<std::string> real;
  size_t resyncs = 0;
  for (const std::string& response : run.responses) {
    if (response.rfind("err ? parse: resynchronized", 0) == 0) {
      ++resyncs;
    } else {
      real.push_back(response);
    }
  }
  if (resyncs != injections) {
    std::cerr << "FAIL frame-garbage: " << resyncs
              << " resync responses, want " << injections << "\n";
    return 1;
  }
  if (!CheckIdentical(real, reference, "frame-garbage")) return 1;
  std::cerr << "aqo_chaos: frame-garbage survived " << injections
            << " injections ok\n";
  return 0;
}

int RunBurstShed(const std::string& serve_path,
                 const std::vector<std::string>& base_args,
                 const std::vector<std::string>& overload_args,
                 const std::vector<std::string>& frames,
                 const std::vector<std::string>& reference) {
  std::vector<std::string> args = base_args;
  args.insert(args.end(), overload_args.begin(), overload_args.end());
  ServerRun first = RunServer(serve_path, args, frames);
  ServerRun second = RunServer(serve_path, args, frames);
  if (!first.exited_clean() || !second.exited_clean()) {
    std::cerr << "FAIL burst-shed: governed server exited "
              << first.wait_status << "/" << second.wait_status << "\n";
    return 1;
  }
  // Determinism: two governed runs over the same stream are bytewise one
  // run.
  if (!CheckIdentical(second.responses, first.responses,
                      "burst-shed determinism")) {
    return 1;
  }
  if (first.responses.size() != reference.size()) {
    std::cerr << "FAIL burst-shed: " << first.responses.size()
              << " responses, want " << reference.size() << "\n";
    return 1;
  }
  size_t sheds = 0;
  size_t degrades = 0;
  for (size_t i = 0; i < first.responses.size(); ++i) {
    const std::string& response = first.responses[i];
    if (response.find(" shed: ") != std::string::npos &&
        response.rfind("err ", 0) == 0) {
      ++sheds;
    } else if (response.find(" degraded=1") != std::string::npos) {
      ++degrades;
    } else if (response != reference[i]) {
      std::cerr << "FAIL burst-shed: non-shed response " << i
                << " diverged from ungoverned reference\n  got:  "
                << response.substr(0, 200) << "\n  want: "
                << reference[i].substr(0, 200) << "\n";
      return 1;
    }
  }
  if (sheds == 0 || degrades == 0) {
    std::cerr << "FAIL burst-shed: schedule produced sheds=" << sheds
              << " degrades=" << degrades
              << " — thresholds too loose to exercise the governor\n";
    return 1;
  }
  std::cerr << "aqo_chaos: burst-shed sheds=" << sheds
            << " degrades=" << degrades << " ok\n";
  return 0;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::signal(SIGPIPE, SIG_IGN);  // killed servers turn writes into EPIPE

  std::string serve_path = flags.GetString("serve");
  std::string stream_path = flags.GetString("stream");
  std::string scenario = flags.GetString("scenario");
  if (serve_path.empty() || stream_path.empty() || scenario.empty()) {
    std::cerr << "usage: aqo_chaos --serve=<aqo_serve> --stream=<frames.bin> "
                 "--scenario=persist-sweep|kill-restart|frame-garbage|"
                 "burst-shed [--site=] [--kill-after=] [--garbage-every=] "
                 "[--garbage-bytes=] [--overload-args=] [--serve-args=] "
                 "[--state-root=]\n";
    return 2;
  }
  std::vector<std::string> frames = LoadStream(stream_path);
  std::vector<std::string> base_args = SplitArgs(flags.GetString("serve-args"));
  std::string state_root = flags.GetString("state-root");
  if (state_root.empty()) {
    state_root = std::filesystem::temp_directory_path() / "aqo_chaos";
  }
  std::filesystem::create_directories(state_root);

  // The fault-free, stateless reference every scenario compares against.
  ServerRun reference = RunServer(serve_path, base_args, frames);
  if (!reference.exited_clean() ||
      reference.responses.size() != frames.size()) {
    std::cerr << "FAIL reference run: status " << reference.wait_status
              << ", " << reference.responses.size() << "/" << frames.size()
              << " responses\n";
    return 1;
  }

  if (scenario == "persist-sweep") {
    std::string site = flags.GetString("site", "persist.append");
    int max_ordinal = static_cast<int>(flags.GetInt("max-ordinal", 64));
    return RunPersistSweep(serve_path, base_args, frames,
                           reference.responses, site, state_root,
                           max_ordinal);
  }
  if (scenario == "kill-restart") {
    int kill_after = static_cast<int>(flags.GetInt("kill-after", 5));
    return RunKillRestart(serve_path, base_args, frames,
                          reference.responses, state_root, kill_after);
  }
  if (scenario == "frame-garbage") {
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    int garbage_every = static_cast<int>(flags.GetInt("garbage-every", 5));
    int garbage_bytes = static_cast<int>(flags.GetInt("garbage-bytes", 9));
    return RunFrameGarbage(serve_path, base_args, frames,
                           reference.responses, seed, garbage_every,
                           garbage_bytes);
  }
  if (scenario == "burst-shed") {
    std::vector<std::string> overload_args =
        SplitArgs(flags.GetString("overload-args"));
    if (overload_args.empty()) {
      std::cerr << "error: burst-shed needs --overload-args= with governor "
                   "flags\n";
      return 2;
    }
    return RunBurstShed(serve_path, base_args, overload_args, frames,
                        reference.responses);
  }
  std::cerr << "error: unknown --scenario '" << scenario << "'\n";
  return 2;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
