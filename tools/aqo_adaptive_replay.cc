// aqo_adaptive_replay — verifies an adaptive decision log reconstructs.
//
// Reads a JSONL run-log (the --json-out of any bench, aqo_serve, or
// service batch run that exercised the `adaptive` entry), replays every
// `adaptive_decision` record against a feedback store via
// ReplayDecisionLog (qo/adaptive.h): each logged choice is re-derived
// with Recommend() from the store state the original process saw and
// compared against what was logged, then the logged outcomes are applied
// exactly as the original run applied them. `adaptive_commit` records
// mark the commit boundaries. Unrelated records are skipped.
//
// Usage:
//   aqo_adaptive_replay <runlog.jsonl> [--feedback-in=<file>]
//
// --feedback-in= pre-loads the store with a persisted feedback file
// (PersistFileKind::kFeedback) when the logged process itself started
// warm — the replayed store must match the original's starting state.
//
// Exit status: 0 when every decision reconstructed; 1 on any mismatch or
// parse problem; 2 on usage/IO errors. The CI adaptive smoke runs this
// over a fresh serve log and requires 0.

#include <fstream>
#include <iostream>
#include <string>

#include "qo/adaptive.h"

namespace aqo {
namespace {

int Main(int argc, char** argv) {
  std::string log_path;
  std::string feedback_in;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--feedback-in=", 0) == 0) {
      feedback_in = arg.substr(14);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return 2;
    } else if (log_path.empty()) {
      log_path = arg;
    } else {
      std::cerr << "error: more than one log path\n";
      return 2;
    }
  }
  if (log_path.empty()) {
    std::cerr << "usage: aqo_adaptive_replay <runlog.jsonl> "
                 "[--feedback-in=<file>]\n";
    return 2;
  }

  FeedbackStore store;
  if (!feedback_in.empty()) {
    FeedbackLoadStats loaded = store.LoadFrom(feedback_in);
    if (!loaded.existed) {
      std::cerr << "error: --feedback-in=" << feedback_in << ": not found\n";
      return 2;
    }
    if (!loaded.damage.empty()) {
      std::cerr << "error: --feedback-in=" << feedback_in << ": "
                << loaded.damage << "\n";
      return 2;
    }
    std::cerr << "aqo_adaptive_replay: preloaded " << loaded.records
              << " feedback records\n";
  }

  std::ifstream in(log_path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open " << log_path << "\n";
    return 2;
  }
  DecisionReplayStats stats = ReplayDecisionLog(in, &store);
  std::cout << "aqo_adaptive_replay: decisions=" << stats.decisions
            << " commits=" << stats.commits
            << " mismatches=" << stats.mismatches << "\n";
  if (!stats.error.empty()) {
    std::cerr << "error: " << stats.error << "\n";
    return 1;
  }
  if (stats.mismatches > 0) return 1;
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
