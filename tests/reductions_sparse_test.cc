// Tests for the Section 6 sparse-query-graph reductions f_{N,e} and
// f_{H,e}: exact edge budgets, preserved YES-side witnesses, and the
// persistence of the gap structure.

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "reductions/sparse.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(EdgeBudgets, Formulas) {
  EXPECT_EQ(SparseEdgeBudget(100, 0.5), 110);
  EXPECT_EQ(DenseEdgeBudget(100, 0.5), 4950 - 10);
  EXPECT_EQ(SparseEdgeBudget(64, 0.75), 64 + 23);  // ceil(64^0.75) = 23
}

TEST(SparseQon, ConstructionMeetsEdgeBudget) {
  Rng rng(101);
  Graph g1 = CliqueClassGraph(6, 2, 1.0, 4, &rng);
  for (double tau : {0.4, 0.6}) {
    SparseQonParams params;
    params.base = {.c = 4.0 / 6.0, .d = 1.0 / 3.0, .log2_alpha = 64.0};
    params.k = 3;  // m = 216
    params.edge_budget = SparseEdgeBudget(216, tau);
    SparseQonGapInstance gap = ReduceCliqueToSparseQon(g1, params, &rng);
    EXPECT_EQ(gap.m, 216);
    EXPECT_EQ(static_cast<int64_t>(gap.instance.graph().NumEdges()),
              params.edge_budget);
    EXPECT_TRUE(gap.instance.graph().IsConnected());
    // Source subgraph preserved.
    for (const auto& [u, v] : g1.Edges()) {
      EXPECT_TRUE(gap.instance.graph().HasEdge(u, v));
    }
  }
}

TEST(SparseQon, DenseBudgetAlsoWorks) {
  Rng rng(102);
  Graph g1 = CliqueClassGraph(5, 2, 1.0, 3, &rng);
  SparseQonParams params;
  params.base = {.c = 0.6, .d = 0.2, .log2_alpha = 64.0};
  params.k = 2;  // m = 25
  params.edge_budget = DenseEdgeBudget(25, 0.5);
  SparseQonGapInstance gap = ReduceCliqueToSparseQon(g1, params, &rng);
  EXPECT_EQ(static_cast<int64_t>(gap.instance.graph().NumEdges()),
            params.edge_budget);
}

TEST(SparseQon, WitnessStaysWithinSlackOfK) {
  // Theorem 16 YES side: the clique-first witness costs at most K times
  // the auxiliary slack, and — with alpha chosen large in the paper's
  // spirit — that slack is a small fraction of one alpha power, so the
  // NO floor K * alpha^{(d/2)n - 1} still clears it.
  Rng rng(103);
  std::vector<int> planted;
  Graph g1 = CliqueClassGraph(8, 2, 1.0, 6, &rng, &planted);
  SparseQonParams params;
  // c = 6/8, d = 1/2: NO floor gains (d/2)n - 1 = 1 full alpha power.
  params.base = {.c = 0.75, .d = 0.5, .log2_alpha = 60000.0};
  params.k = 3;  // m = 512
  params.edge_budget = SparseEdgeBudget(512, 0.6);
  SparseQonGapInstance gap = ReduceCliqueToSparseQon(g1, params, &rng);

  // Slack = beta^{n (m-n)} = 2^{2 * 8 * 504}: about 0.13 alpha powers.
  EXPECT_LT(gap.AuxiliarySlack().Log2(), 0.2 * params.base.log2_alpha);

  JoinSequence witness = SparseQonWitness(gap, g1, planted);
  EXPECT_FALSE(HasCartesianProduct(gap.instance.graph(), witness));
  // V1 comes first.
  for (int i = 0; i < gap.n; ++i)
    EXPECT_LT(witness[static_cast<size_t>(i)], gap.n);
  LogDouble cost = QonSequenceCost(gap.instance, witness);
  LogDouble budget = gap.KBound() * gap.AuxiliarySlack() *
                     gap.alpha.Pow(0.5);  // headroom
  EXPECT_LE(cost.Log2(), budget.Log2());
  // ... and the NO floor dwarfs witness + slack: the gap survives the
  // embedding.
  EXPECT_GT(gap.NoSideBound().Log2(), budget.Log2());
}

TEST(SparseQoh, ConstructionMeetsEdgeBudgetAndForcesSentinel) {
  Rng rng(104);
  Graph g1 = Graph::Complete(9);
  SparseQohParams params;
  params.base.log2_alpha = 2.0;
  params.k = 2;  // m = 81
  params.edge_budget = SparseEdgeBudget(81, 0.9);
  SparseQohGapInstance gap = ReduceTwoThirdsCliqueToSparseQoh(g1, params, &rng);
  EXPECT_EQ(gap.m, 81);
  EXPECT_EQ(static_cast<int64_t>(gap.instance.graph().NumEdges()),
            params.edge_budget);
  EXPECT_TRUE(gap.instance.graph().IsConnected());

  // A sequence not starting with R_0 is infeasible.
  JoinSequence bad = IdentitySequence(81);
  std::swap(bad[0], bad[5]);
  EXPECT_FALSE(OptimalDecomposition(gap.instance, bad).feasible);
}

TEST(SparseQoh, WitnessFeasibleAndWithinSlackOfL) {
  Rng rng(105);
  std::vector<int> planted;
  Graph g1 = CliqueClassGraph(9, 3, 0.9, 6, &rng, &planted);
  SparseQohParams params;
  params.base.log2_alpha = 2.0;
  params.k = 2;
  params.edge_budget = SparseEdgeBudget(81, 0.9);
  SparseQohGapInstance gap = ReduceTwoThirdsCliqueToSparseQoh(g1, params, &rng);

  QohWitnessPlan plan = SparseQohWitness(gap, g1, planted);
  PipelineCostResult cost =
      DecompositionCost(gap.instance, plan.sequence, plan.decomposition);
  ASSERT_TRUE(cost.feasible);
  // The V2 phase multiplies intermediates by at most prod of V2 sizes =
  // 2^{n (m-n-1)}: the slack of Theorem 17. (The paper kills it with
  // alpha >= 2^{Theta(n m)}; the exact linear-domain memory model caps
  // log2 alpha at 104/(n-1), so at implementable sizes the slack is what
  // it is — we verify the accounting, and the V1-phase floor below.)
  double slack_log2 =
      static_cast<double>(gap.n) * static_cast<double>(gap.m - gap.n - 1) +
      20.0;
  EXPECT_LE(cost.cost.Log2(), gap.LBound().Log2() + slack_log2);
}

TEST(SparseQoh, GreedyPlansOnNoInstancesStayAboveFloor) {
  // NO side, empirically: connectivity-greedy sequences on an
  // omega-deficient source keep their optimal decompositions above
  // G(alpha, n) (over slack).
  Rng rng(106);
  Graph g1(9);
  int omega = 9;
  while (omega > 3) {
    g1 = Gnp(9, 0.33, &rng);
    omega = static_cast<int>(MaxClique(g1).clique.size());
  }
  SparseQohParams params;
  params.base.log2_alpha = 2.0;
  params.k = 2;
  params.edge_budget = SparseEdgeBudget(81, 0.9);
  SparseQohGapInstance gap = ReduceTwoThirdsCliqueToSparseQoh(g1, params, &rng);

  double epsilon = 2.0 - 3.0 * static_cast<double>(omega) / 9.0;
  double floor_log2 = gap.GBound(epsilon).Log2();
  for (int trial = 0; trial < 20; ++trial) {
    // Random feasible sequence: R_0 first, then a random permutation.
    JoinSequence seq = {0};
    JoinSequence rest = IdentitySequence(gap.m);
    rest.erase(rest.begin());
    rng.Shuffle(&rest);
    seq.insert(seq.end(), rest.begin(), rest.end());
    QohPlan plan = OptimalDecomposition(gap.instance, seq);
    if (!plan.feasible) continue;
    EXPECT_GE(plan.cost.Log2(), floor_log2 - 6.0) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace aqo
