// Fault-injection proofs for the batch service (qo/service.h) and the
// plan cache, driven by the deterministic injector
// (util/fault_injection.h):
//
//   * an injected per-item fault is retried exactly once with the same
//     RNG stream, so a single-shot fault recovers bit-identically;
//   * a two-shot (permanent) fault marks that item kFailed while every
//     sibling item stays bit-identical — across threads {1, 2, 4} and
//     cache on/off — and the failed item stays retryable;
//   * a dropped cache insert degrades gracefully: results never change,
//     later probes just miss.
//
// Ordinals come from program structure (batch item index, per-cache
// insert sequence), so every scenario reproduces bit-identically
// regardless of thread schedule.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "qo/plan_cache.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

constexpr uint64_t kSeed = 7;
const int kThreadCounts[] = {1, 2, 4};

// Distinct (non-duplicate) instances so every item is its own
// representative: the "service.item" ordinal equals the item index
// whether or not a cache deduplicates the batch.
std::vector<QonInstance> DistinctInstances() {
  Rng rng(51);
  std::vector<QonInstance> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(RandomQonWorkload(6 + (i % 3), &rng));
  }
  return batch;
}

BatchOptions BaseOptions() {
  BatchOptions options;
  options.optimizer = "sa";  // stochastic: retry-with-same-stream matters
  options.qon.sa.iterations = 200;
  options.qon.sa.restarts = 1;
  options.seed = kSeed;
  return options;
}

uint64_t CounterValue(const char* name) {
  return obs::Registry::Get().GetCounter(name).Value();
}

void ExpectItemBits(const QonBatchItem& want, const QonBatchItem& got,
                    const std::string& label) {
  EXPECT_EQ(want.result.feasible, got.result.feasible) << label;
  EXPECT_EQ(want.result.cost.Log2(), got.result.cost.Log2()) << label;
  EXPECT_EQ(want.result.sequence, got.result.sequence) << label;
  EXPECT_EQ(want.result.evaluations, got.result.evaluations) << label;
  EXPECT_EQ(want.result.status, got.result.status) << label;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Get().Disarm(); }
  void TearDown() override { FaultInjector::Get().Disarm(); }
};

TEST_F(FaultInjectionTest, SingleShotFaultRetriesOnceAndRecoversBitwise) {
  std::vector<QonInstance> batch = DistinctInstances();
  BatchOptions options = BaseOptions();
  std::vector<QonBatchItem> reference = OptimizeQonBatch(batch, options);

  constexpr uint64_t kVictim = 2;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    options.pool = &pool;
    std::string label = "threads=" + std::to_string(threads);

    uint64_t retries_before = CounterValue("qo.service.retries");
    uint64_t failures_before = CounterValue("qo.service.failures");
    FaultInjector::Get().Arm("service.item", kVictim, /*times=*/1);
    std::vector<QonBatchItem> got = OptimizeQonBatch(batch, options);
    FaultInjector::Get().Disarm();

    // Exactly one retry, no failure, and — because the retry re-seeds the
    // identical RNG stream — every item, victim included, is bit-equal.
    EXPECT_EQ(CounterValue("qo.service.retries") - retries_before, 1u)
        << label;
    EXPECT_EQ(CounterValue("qo.service.failures") - failures_before, 0u)
        << label;
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectItemBits(reference[i], got[i],
                     label + " item " + std::to_string(i));
      EXPECT_EQ(got[i].result.status, PlanStatus::kComplete) << label;
    }
  }
}

TEST_F(FaultInjectionTest, PermanentFaultFailsOnlyTheVictim) {
  std::vector<QonInstance> batch = DistinctInstances();
  BatchOptions options = BaseOptions();
  std::vector<QonBatchItem> reference = OptimizeQonBatch(batch, options);

  constexpr uint64_t kVictim = 3;
  for (int threads : kThreadCounts) {
    for (bool use_cache : {false, true}) {
      ThreadPool pool(threads);
      PlanCache cache;
      options.pool = &pool;
      options.cache = use_cache ? &cache : nullptr;
      std::string label = "threads=" + std::to_string(threads) +
                          " cache=" + (use_cache ? "on" : "off");

      uint64_t retries_before = CounterValue("qo.service.retries");
      uint64_t failures_before = CounterValue("qo.service.failures");
      FaultInjector::Get().Arm("service.item", kVictim, /*times=*/2);
      std::vector<QonBatchItem> got = OptimizeQonBatch(batch, options);
      FaultInjector::Get().Disarm();

      EXPECT_EQ(CounterValue("qo.service.retries") - retries_before, 1u)
          << label;
      EXPECT_EQ(CounterValue("qo.service.failures") - failures_before, 1u)
          << label;
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        if (i == kVictim) {
          EXPECT_FALSE(got[i].result.feasible) << label;
          EXPECT_EQ(got[i].result.status, PlanStatus::kFailed) << label;
          continue;
        }
        ExpectItemBits(reference[i], got[i],
                       label + " sibling " + std::to_string(i));
      }

      if (use_cache) {
        // kFailed is never cached, so the victim stays retryable: the
        // next (fault-free) run through the same cache recomputes it and
        // matches the reference bit for bit.
        std::vector<QonBatchItem> healed = OptimizeQonBatch(batch, options);
        for (size_t i = 0; i < healed.size(); ++i) {
          ExpectItemBits(reference[i], healed[i],
                         label + " healed " + std::to_string(i));
        }
        EXPECT_FALSE(got[kVictim].from_cache) << label;
      }
      options.cache = nullptr;
    }
  }
}

TEST_F(FaultInjectionTest, DroppedCacheInsertDegradesGracefully) {
  std::vector<QonInstance> batch = DistinctInstances();
  BatchOptions options = BaseOptions();
  std::vector<QonBatchItem> reference = OptimizeQonBatch(batch, options);

  PlanCache cache;
  options.cache = &cache;
  uint64_t dropped_before = CounterValue("qo.plan_cache.insert_dropped");
  // Drop the first insert *attempt* on this cache instance.
  FaultInjector::Get().Arm("plan_cache.insert", /*ordinal=*/0, /*times=*/1);
  std::vector<QonBatchItem> cold = OptimizeQonBatch(batch, options);
  FaultInjector::Get().Disarm();

  EXPECT_EQ(CounterValue("qo.plan_cache.insert_dropped") - dropped_before, 1u);
  EXPECT_EQ(cache.GetStats().inserts, batch.size() - 1);
  ASSERT_EQ(cold.size(), reference.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ExpectItemBits(reference[i], cold[i], "cold item " + std::to_string(i));
  }

  // The dropped entry is simply recomputed on the next run — same bits —
  // and this time its insert goes through.
  std::vector<QonBatchItem> warm = OptimizeQonBatch(batch, options);
  for (size_t i = 0; i < warm.size(); ++i) {
    ExpectItemBits(reference[i], warm[i], "warm item " + std::to_string(i));
  }
  EXPECT_EQ(cache.GetStats().inserts, batch.size());
}

TEST_F(FaultInjectionTest, MaybeThrowThrowsOnlyAtTheArmedOrdinal) {
  FaultInjector::Get().Arm("service.item", 5, /*times=*/1);
  EXPECT_NO_THROW(FaultInjector::Get().MaybeThrow("service.item", 4));
  EXPECT_NO_THROW(FaultInjector::Get().MaybeThrow("plan_cache.insert", 5));
  EXPECT_THROW(FaultInjector::Get().MaybeThrow("service.item", 5),
               FaultInjectedError);
  // The shot is spent; the same ordinal passes now.
  EXPECT_NO_THROW(FaultInjector::Get().MaybeThrow("service.item", 5));
  EXPECT_TRUE(FaultInjector::Get().armed());
  FaultInjector::Get().Disarm();
  EXPECT_FALSE(FaultInjector::Get().armed());
}

}  // namespace
}  // namespace aqo
