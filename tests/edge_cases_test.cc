// Boundary and edge-case coverage across modules: the smallest legal
// instances, exact-boundary budgets, and numeric extremes.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "reductions/clique_to_qon.h"
#include "sqo/partition.h"
#include "sqo/star_query.h"
#include "util/bigint.h"
#include "util/bitset.h"
#include "util/log_double.h"
#include "util/random.h"

namespace aqo {
namespace {

// --- LogDouble extremes ---

TEST(LogDoubleEdge, ExtremeExponents) {
  LogDouble huge = LogDouble::FromLog2(1e15);
  LogDouble tiny = LogDouble::FromLog2(-1e15);
  EXPECT_DOUBLE_EQ((huge * tiny).Log2(), 0.0);
  EXPECT_DOUBLE_EQ((huge / tiny).Log2(), 2e15);
  EXPECT_DOUBLE_EQ((huge + tiny).Log2(), 1e15);  // tiny vanishes
  EXPECT_DOUBLE_EQ((huge - tiny).Log2(), 1e15);
  EXPECT_EQ(tiny.ToLinear(), 0.0);  // underflows linearly, stays exact in log
}

TEST(LogDoubleEdge, NearEqualSubtraction) {
  LogDouble a = LogDouble::FromLinear(1000.0);
  LogDouble b = LogDouble::FromLinear(999.999);
  EXPECT_NEAR((a - b).ToLinear(), 0.001, 1e-9);
  // Bit-identical operands cancel to zero exactly.
  EXPECT_TRUE((a - a).IsZero());
}

TEST(LogDoubleEdge, StreamFormatting) {
  std::ostringstream os;
  os << LogDouble::Zero() << " " << LogDouble::FromLinear(42.0) << " "
     << LogDouble::FromLog2(1234.5);
  EXPECT_EQ(os.str(), "0 42 2^1234.5");
}

TEST(LogDoubleEdge, MinMaxWithZero) {
  LogDouble z = LogDouble::Zero();
  LogDouble one = LogDouble::One();
  EXPECT_TRUE(MinOf(z, one).IsZero());
  EXPECT_EQ(MaxOf(z, one).Log2(), 0.0);
}

// --- BigInt extremes ---

TEST(BigIntEdge, DivisionIdentities) {
  BigInt x = BigInt::FromString("123456789123456789123456789");
  EXPECT_EQ(x / x, BigInt(1));
  EXPECT_EQ(x % x, BigInt(0));
  EXPECT_EQ(x / BigInt(1), x);
  EXPECT_EQ(x / -x, BigInt(-1));
  EXPECT_EQ((-x) / x, BigInt(-1));
  EXPECT_EQ((x + 1) / x, BigInt(1));
  EXPECT_EQ((x + 1) % x, BigInt(1));
}

TEST(BigIntEdge, PowersOfTwoStrings) {
  BigInt p = BigInt(2).Pow(128);
  EXPECT_EQ(p.ToString(), "340282366920938463463374607431768211456");
  EXPECT_EQ(p.BitLength(), 129);
  EXPECT_EQ((p - 1).BitLength(), 128);
}

TEST(BigIntEdge, OnesAndZeros) {
  EXPECT_EQ(BigInt(1).Pow(1000000), BigInt(1));
  EXPECT_EQ(BigInt(0).Pow(7), BigInt(0));
  EXPECT_EQ((BigInt(0) << 1000).ToString(), "0");
  EXPECT_EQ(BigInt(-1) * BigInt(-1), BigInt(1));
}

TEST(BigIntEdge, NegativeShiftSemantics) {
  EXPECT_EQ((BigInt(-40) >> 3).ToString(), "-5");  // magnitude shift
  EXPECT_EQ((BigInt(-5) << 3).ToString(), "-40");
}

// --- DynamicBitset boundaries ---

TEST(BitsetEdge, EmptyAndSingle) {
  DynamicBitset empty(0);
  EXPECT_EQ(empty.Count(), 0);
  EXPECT_EQ(empty.FindFirst(), -1);
  EXPECT_TRUE(empty.None());
  DynamicBitset one(1);
  one.Set(0);
  EXPECT_EQ(one.Count(), 1);
  EXPECT_EQ(one.FindNext(0), -1);
  EXPECT_EQ((~one).Count(), 0);
}

TEST(BitsetEdge, WordBoundary) {
  DynamicBitset b(64);
  b.Set(63);
  EXPECT_EQ(b.FindFirst(), 63);
  b.SetAll();
  EXPECT_EQ(b.Count(), 64);
  DynamicBitset c(65);
  c.SetAll();
  EXPECT_EQ(c.Count(), 65);
  EXPECT_EQ((~c).Count(), 0);
  c.Reset(64);
  EXPECT_EQ(c.FindNext(63), -1);
}

// --- Graph edge cases ---

TEST(GraphEdge, ComplementInvolutionRandomized) {
  Rng rng(221);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = Gnp(static_cast<int>(rng.UniformInt(0, 20)),
                  rng.UniformReal(0, 1), &rng);
    EXPECT_EQ(g.Complement().Complement(), g);
  }
}

TEST(GraphEdge, InducedEdgeCountMatchesSubgraph) {
  Rng rng(222);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 15));
    Graph g = Gnp(n, 0.5, &rng);
    std::vector<int> vertices =
        rng.SampleWithoutReplacement(n, static_cast<int>(rng.UniformInt(0, n)));
    DynamicBitset set(n);
    for (int v : vertices) set.Set(v);
    EXPECT_EQ(g.InducedEdgeCount(set),
              g.InducedSubgraph(vertices).NumEdges());
  }
}

TEST(GraphEdge, BackEdgeCountsMatchBrute) {
  Rng rng(223);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 12));
    Graph g = Gnp(n, 0.5, &rng);
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    std::vector<int> counts = BackEdgeCounts(g, seq);
    for (size_t i = 0; i < seq.size(); ++i) {
      int brute = 0;
      for (size_t j = 0; j < i; ++j) brute += g.HasEdge(seq[j], seq[i]);
      EXPECT_EQ(counts[i], brute);
    }
  }
}

// --- Minimal QO instances ---

TEST(QonEdge, TwoRelations) {
  Graph g = Chain(2);
  QonInstance inst(g, {LogDouble::FromLinear(8.0), LogDouble::FromLinear(4.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  // {0,1}: H_1 = 8 * (4 * 0.5) = 16; {1,0}: H_1 = 4 * (8 * 0.5) = 16.
  EXPECT_NEAR(QonSequenceCost(inst, {0, 1}).ToLinear(), 16.0, 1e-9);
  EXPECT_NEAR(QonSequenceCost(inst, {1, 0}).ToLinear(), 16.0, 1e-9);
  OptimizerResult dp = DpQonOptimizer(inst);
  EXPECT_NEAR(dp.cost.ToLinear(), 16.0, 1e-9);
  OptimizerResult kbz = IkkbzOptimizer(inst);
  EXPECT_NEAR(kbz.cost.ToLinear(), 16.0, 1e-9);
}

TEST(QonEdge, SetSizeRederivesDefaults) {
  Graph g = Chain(2);
  QonInstance inst(g, {LogDouble::FromLinear(8.0), LogDouble::FromLinear(4.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  inst.SetSize(1, LogDouble::FromLinear(100.0));
  EXPECT_NEAR(inst.AccessCost(0, 1).ToLinear(), 50.0, 1e-9);
  inst.Validate();
}

TEST(QohEdge, MemoryExactlyAtFloors) {
  Graph g = Graph::Complete(3);
  std::vector<LogDouble> sizes(3, LogDouble::FromLinear(256.0));
  // Floors: hjmin(256) = 16 each; two joins need exactly 32.
  QohInstance inst(g, sizes, 32.0);
  PipelineCostResult r = OptimalPipelineCost(inst, {0, 1, 2}, 1, 2);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.allocation[0], 16.0);
  EXPECT_DOUBLE_EQ(r.allocation[1], 16.0);
  inst.SetMemory(31.0);
  EXPECT_FALSE(OptimalPipelineCost(inst, {0, 1, 2}, 1, 2).feasible);
}

TEST(QohEdge, TinyInnerRelationNeedsNoExtraMemory) {
  Graph g = Chain(2);
  // Inner of 2 pages: hjmin(2) = 2 = the relation itself -> g = 0 at the
  // floor: build cost only.
  std::vector<LogDouble> sizes = {LogDouble::FromLinear(1000.0),
                                  LogDouble::FromLinear(2.0)};
  QohInstance inst(g, sizes, 2.0);
  PipelineCostResult r = OptimalPipelineCost(inst, {0, 1}, 1, 1);
  ASSERT_TRUE(r.feasible);
  // cost = read 1000 + build 2 + write 1000*2*1 (selectivity 1: non-edge
  // has none... chain edge default selectivity 1).
  EXPECT_NEAR(r.cost.ToLinear(), 1000.0 + 2.0 + 2000.0, 1e-6);
}

TEST(QohEdge, DecompositionOfTwoRelationsIsSingleton) {
  Rng rng(224);
  Graph g = Chain(2);
  std::vector<LogDouble> sizes(2, LogDouble::FromLinear(64.0));
  QohInstance inst(g, sizes, 100.0);
  QohPlan plan = OptimalDecomposition(inst, {0, 1});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.decomposition.NumFragments(), 1);
}

// --- Reductions at the smallest sizes ---

TEST(ReductionEdge, TwoVertexClique) {
  Graph g = Chain(2);
  QonGapParams params{.c = 1.0, .d = 0.5, .log2_alpha = 2.0};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  JoinSequence witness = CliqueFirstWitness(g, {0, 1});
  EXPECT_GT(QonSequenceCost(gap.instance, witness).Log2(), 0.0);
  EXPECT_GT(gap.KBound().Log2(), 0.0);
}

TEST(ReductionEdge, SingletonCliqueWitness) {
  Rng rng(225);
  Graph g = Gnp(6, 0.8, &rng);
  if (!g.IsConnected()) return;
  JoinSequence seq = CliqueFirstWitness(g, {3});
  EXPECT_TRUE(IsPermutation(seq, 6));
  EXPECT_EQ(seq[0], 3);
  EXPECT_FALSE(HasCartesianProduct(g, seq));
}

// --- SQO-CP minimal ---

TEST(SqoCpEdge, SingleSatellite) {
  SqoCpInstance inst;
  inst.num_satellites = 1;
  inst.ks = 4;
  inst.central_tuples = 10;
  inst.central_pages = 10;
  inst.tuples = {BigInt(20)};
  inst.pages = {BigInt(20)};
  inst.match = {BigInt(2)};
  inst.w = {BigInt(3)};
  inst.w0 = {BigInt(7)};
  inst.budget = 1000;
  SqoCpResult exact = SolveSqoCpExact(inst);
  SqoCpResult brute = SolveSqoCpBrute(inst);
  EXPECT_EQ(exact.best_cost, brute.best_cost);
  // By hand: R0 first NL: 10 + 3*10 = 40; R0 first SM: 40+80 = 120;
  // R1 first NL: 20 + 7*20 = 160; R1 first SM: 120. Optimum 40.
  EXPECT_EQ(exact.best_cost, BigInt(40));
  EXPECT_TRUE(exact.within_budget);
}

// --- PARTITION degenerate cases ---

TEST(PartitionEdge, AllZeros) {
  PartitionInstance inst{{0, 0, 0}};
  EXPECT_TRUE(SolvePartitionDp(inst).has_value());  // empty split works
  EXPECT_TRUE(SolvePartitionBrute(inst).has_value());
}

TEST(PartitionEdge, TwoEqualValues) {
  PartitionInstance inst{{7, 7}};
  auto subset = SolvePartitionDp(inst);
  ASSERT_TRUE(subset.has_value());
  EXPECT_EQ(subset->size(), 1u);
}

TEST(PartitionEdge, SingleDominatingValue) {
  PartitionInstance inst{{10, 1, 1, 2}};  // total 14, half 7: impossible
  EXPECT_FALSE(SolvePartitionDp(inst).has_value());
  EXPECT_FALSE(SolvePartitionBrute(inst).has_value());
}

}  // namespace
}  // namespace aqo
