// Tests for the small util pieces: Rng, DynamicBitset, stats, TextTable.

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
  // Degenerate range.
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(17);
  std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.Count(), 0);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0) && b.Test(63) && b.Test(64) && b.Test(129));
  EXPECT_FALSE(b.Test(1) || b.Test(128));
  EXPECT_EQ(b.Count(), 4);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3);
}

TEST(Bitset, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), -1);
  b.Set(5);
  b.Set(70);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5);
  EXPECT_EQ(b.FindNext(5), 70);
  EXPECT_EQ(b.FindNext(70), 199);
  EXPECT_EQ(b.FindNext(199), -1);
}

TEST(Bitset, SetAllRespectsSize) {
  DynamicBitset b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67);
  DynamicBitset c = ~b;
  EXPECT_EQ(c.Count(), 0);
}

TEST(Bitset, BitwiseOps) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  EXPECT_EQ((a & b).ToVector(), std::vector<int>({50}));
  EXPECT_EQ((a | b).ToVector(), std::vector<int>({1, 50, 99}));
  EXPECT_EQ((a ^ b).ToVector(), std::vector<int>({1, 99}));
  EXPECT_EQ(a.AndCount(b), 1);
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset sub(100);
  sub.Set(50);
  EXPECT_TRUE(sub.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(sub));
}

TEST(Bitset, ForEachSetBitOrdered) {
  DynamicBitset b(300);
  for (int i : {3, 64, 65, 256, 299}) b.Set(i);
  std::vector<int> seen;
  b.ForEachSetBit([&seen](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<int>({3, 64, 65, 256, 299}));
}

TEST(Stats, AccumulatorMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.Variance(), 32.0 / 7.0, 1e-12);
}

// Regression: min_/max_ used to start at 0.0, so streams that never cross
// zero could report a bound they never contained (an all-negative stream
// claiming max() == 0).
TEST(Stats, AccumulatorMinMaxOnOneSidedStreams) {
  StatAccumulator neg;
  for (double v : {-5.0, -2.0, -9.5}) neg.Add(v);
  EXPECT_DOUBLE_EQ(neg.min(), -9.5);
  EXPECT_DOUBLE_EQ(neg.max(), -2.0);

  StatAccumulator pos;
  for (double v : {4.0, 11.0, 6.5}) pos.Add(v);
  EXPECT_DOUBLE_EQ(pos.min(), 4.0);
  EXPECT_DOUBLE_EQ(pos.max(), 11.0);
}

TEST(Stats, AccumulatorEmptyReportsInfinities) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(acc.max(), -std::numeric_limits<double>::infinity());
}

TEST(Stats, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
}

TEST(Stats, PercentilesStayCorrectAcrossInterleavedAdds) {
  // Percentile sorts lazily and caches the order; an Add between reads
  // must invalidate that cache, whatever order samples arrive in.
  SampleSet s;
  s.Add(30.0);
  s.Add(10.0);
  EXPECT_NEAR(s.Percentile(0), 10.0, 1e-9);
  s.Add(5.0);  // below the current minimum, after a sorted read
  EXPECT_NEAR(s.Percentile(0), 5.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 30.0, 1e-9);
  s.Add(40.0);  // above the current maximum, after more sorted reads
  EXPECT_NEAR(s.Percentile(100), 40.0, 1e-9);
  EXPECT_NEAR(s.Median(), 20.0, 1e-9);
  // Repeated reads with no Add in between keep returning the same value.
  EXPECT_NEAR(s.Median(), 20.0, 1e-9);
}

TEST(Stats, LineFitRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  LineFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Table, PrintsAlignedRows) {
  TextTable t;
  t.SetTitle("demo");
  t.SetHeader({"n", "cost"});
  t.AddRow({"10", "2^55"});
  t.AddRow({"100", "2^5500"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| n   | cost   |"), std::string::npos);
  EXPECT_NE(out.find("2^5500"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.14");
  EXPECT_EQ(FormatLog2(123.456, 4), "2^123.5");
}

}  // namespace
}  // namespace aqo
