# Chaos suite driver (see tests/CMakeLists.txt): generates a fixed
# duplicate-heavy request stream once, then hands it to aqo_chaos for one
# fault scenario. aqo_chaos owns the checks (byte-identity to a
# fault-free reference, recovery, deterministic shed sets); this script
# just plumbs paths and fails the test on a nonzero exit.
#
# Usage: cmake -DAQO_SERVE=<bin> -DAQO_LOADGEN=<bin> -DAQO_CHAOS=<bin>
#        -DWORK_DIR=<dir> -DSCENARIO=<name>
#        [-DSCENARIO_ARGS=<space-separated extra aqo_chaos flags>]
#        -P run_chaos.cmake

if(NOT AQO_SERVE OR NOT AQO_LOADGEN OR NOT AQO_CHAOS OR NOT WORK_DIR
   OR NOT SCENARIO)
  message(FATAL_ERROR
    "AQO_SERVE, AQO_LOADGEN, AQO_CHAOS, WORK_DIR and SCENARIO are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Small instances (n=7) keep the full persist sweeps fast; 30 arrivals
# over 4 bases still exercise duplicate hits, journal growth, and enough
# arrival slots for the governor scenarios.
execute_process(
  COMMAND "${AQO_LOADGEN}" --requests=30 --bases=4 --n=7 --seed=5
          --out=${WORK_DIR}/stream.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "aqo_loadgen exited with ${rc}")
endif()

separate_arguments(scenario_args UNIX_COMMAND "${SCENARIO_ARGS}")
execute_process(
  COMMAND "${AQO_CHAOS}" --serve=${AQO_SERVE} --stream=${WORK_DIR}/stream.bin
          --scenario=${SCENARIO} --state-root=${WORK_DIR}/state
          ${scenario_args}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "aqo_chaos --scenario=${SCENARIO} exited with ${rc}")
endif()

message(STATUS "chaos scenario ${SCENARIO} held")
