// Tests for the deterministic thread pool: static chunk geometry,
// ParallelFor coverage, exception propagation (lowest chunk wins), nested
// submission falling back to inline execution, and MixSeed stream
// independence.

#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace aqo {
namespace {

TEST(ChunkOf, BalancedContiguousCover) {
  for (int threads : {1, 2, 3, 7, 16}) {
    for (size_t count : {size_t{0}, size_t{1}, size_t{5}, size_t{16},
                         size_t{17}, size_t{1000}}) {
      size_t covered = 0;
      size_t prev_end = 0;
      size_t max_len = 0, min_len = count + 1;
      for (int t = 0; t < threads; ++t) {
        ThreadPool::Range r = ThreadPool::ChunkOf(count, threads, t);
        EXPECT_EQ(r.begin, prev_end);  // contiguous, in order
        EXPECT_LE(r.begin, r.end);
        prev_end = r.end;
        covered += r.end - r.begin;
        max_len = std::max(max_len, r.end - r.begin);
        min_len = std::min(min_len, r.end - r.begin);
      }
      EXPECT_EQ(prev_end, count);
      EXPECT_EQ(covered, count);
      EXPECT_LE(max_len - min_len, size_t{1});  // balanced
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(hits.size(), [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ChunkAccumulationIsThreadCountDeterministic) {
  // Sums accumulated per chunk and merged in chunk order are a pure
  // function of (count, threads): rerunning the same pool geometry gives
  // identical per-chunk partials.
  auto partials = [](ThreadPool* pool, size_t count) {
    std::vector<uint64_t> sums(static_cast<size_t>(pool->num_threads()), 0);
    pool->ParallelForChunks(count, [&](int chunk, size_t begin, size_t end) {
      uint64_t s = 0;
      for (size_t i = begin; i < end; ++i) s += i * i;
      sums[static_cast<size_t>(chunk)] = s;
    });
    return sums;
  };
  ThreadPool a(4), b(4);
  EXPECT_EQ(partials(&a, 1000), partials(&b, 1000));
  // And the merged total matches the serial pool's.
  ThreadPool serial(1);
  uint64_t total4 = 0, total1 = 0;
  for (uint64_t s : partials(&a, 1000)) total4 += s;
  for (uint64_t s : partials(&serial, 1000)) total1 += s;
  EXPECT_EQ(total4, total1);
}

TEST(ThreadPool, PropagatesLowestChunkException) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    try {
      pool.ParallelForChunks(100, [&](int chunk, size_t, size_t) {
        if (chunk >= 1) {  // chunks 1, 2, 3 all throw; chunk 1 must win
          throw std::runtime_error("chunk " + std::to_string(chunk));
        }
      });
      FAIL() << "expected ParallelForChunks to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 1");
    }
  }
  // The pool stays usable after an exceptional job.
  std::atomic<size_t> n{0};
  pool.ParallelFor(50, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 50u);
}

TEST(ThreadPool, NestedSubmissionRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(4, [&](size_t outer) {
    // A nested job on the same pool must not deadlock; it degrades to an
    // inline loop on the submitting chunk's thread.
    pool.ParallelFor(16, [&](size_t inner) {
      hits[outer * 16 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(32, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(MixSeed, StreamsAreDistinctAndReproducible) {
  std::set<uint64_t> seen;
  for (uint64_t seed : {uint64_t{0}, uint64_t{1}, uint64_t{12345}}) {
    for (uint64_t stream = 0; stream < 100; ++stream) {
      uint64_t s = MixSeed(seed, stream);
      EXPECT_EQ(s, MixSeed(seed, stream));
      seen.insert(s);
    }
    // A cell's stream differs from the base seed used directly.
    EXPECT_NE(MixSeed(seed, 0), seed);
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across this grid
}

}  // namespace
}  // namespace aqo
