# Adaptive serve smoke (see tests/CMakeLists.txt).
#
# Generates a duplicate-heavy request stream that routes every request to
# the `adaptive` registry entry (aqo_loadgen --optimizer=adaptive), then:
#
#   1. runs aqo_serve over it TWICE with the same seed and asserts the two
#      stdout response streams are byte-identical — the adaptive entry's
#      decisions are a pure function of (stream, seed, initial store);
#   2. replays run 1's JSONL decision log with aqo_adaptive_replay, which
#      re-derives every choice from the logged features/predictions and
#      exits nonzero on any mismatch;
#   3. runs once against --feedback-dir= state, restarts against the same
#      directory, and asserts the warm process actually loaded the cold
#      process's committed records.
#
# Usage: cmake -DAQO_SERVE=<bin> -DAQO_LOADGEN=<bin> -DAQO_REPLAY=<bin>
#        -DWORK_DIR=<dir> -P run_adaptive_smoke.cmake

if(NOT AQO_SERVE OR NOT AQO_LOADGEN OR NOT AQO_REPLAY OR NOT WORK_DIR)
  message(FATAL_ERROR
    "AQO_SERVE, AQO_LOADGEN, AQO_REPLAY and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${AQO_LOADGEN}" --requests=40 --bases=5 --n=7 --seed=31
          --optimizer=adaptive --out=${WORK_DIR}/workload.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "aqo_loadgen exited with ${rc}")
endif()

function(run_serve tag)
  execute_process(
    COMMAND "${AQO_SERVE}" --seed=3 ${ARGN}
            --json-out=${WORK_DIR}/${tag}.jsonl
    INPUT_FILE "${WORK_DIR}/workload.bin"
    OUTPUT_FILE "${WORK_DIR}/${tag}.out"
    ERROR_FILE "${WORK_DIR}/${tag}.err"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "aqo_serve (${tag}) exited with ${rc}")
  endif()
endfunction()

# 1. Same-seed bit-identity.
run_serve(run1)
run_serve(run2)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/run1.out" "${WORK_DIR}/run2.out"
  RESULT_VARIABLE stdout_diff)
if(NOT stdout_diff EQUAL 0)
  message(FATAL_ERROR
    "adaptive responses differ between two same-seed runs "
    "(${WORK_DIR}/run1.out vs run2.out)")
endif()

# 2. The decision log reconstructs.
execute_process(
  COMMAND "${AQO_REPLAY}" "${WORK_DIR}/run1.jsonl"
  OUTPUT_VARIABLE replay_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "aqo_adaptive_replay exited with ${rc}: ${replay_out}")
endif()
if(NOT replay_out MATCHES "decisions=([1-9][0-9]*)")
  message(FATAL_ERROR
    "aqo_adaptive_replay replayed no decisions: ${replay_out}")
endif()

# 3. Feedback persistence across a restart.
run_serve(fb_cold --feedback-dir=${WORK_DIR}/fb)
run_serve(fb_warm --feedback-dir=${WORK_DIR}/fb)
file(READ "${WORK_DIR}/fb_warm.err" warm_err)
if(NOT warm_err MATCHES "feedback store loaded ([1-9][0-9]*) records")
  message(FATAL_ERROR
    "warm restart loaded no feedback records — the cold run persisted "
    "nothing (stderr: ${warm_err})")
endif()

message(STATUS "adaptive smoke: stdout identical across same-seed runs; "
  "decision log replayed; warm restart loaded "
  "${CMAKE_MATCH_1} feedback records")
