// Tests for the CDCL solver: cross-validation against DPLL / brute force
// and behaviour on structured hard families.

#include "sat/cdcl.h"

#include <gtest/gtest.h>

#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/random.h"

namespace aqo {
namespace {

bool SatisfiableBrute(const CnfFormula& f) {
  int n = f.num_vars();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Assignment a(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) a[static_cast<size_t>(v)] = (mask >> v) & 1;
    if (f.IsSatisfiedBy(a)) return true;
  }
  return false;
}

TEST(Cdcl, TrivialCases) {
  CnfFormula sat(2);
  sat.AddClause({1, 2});
  sat.AddClause({-1, 2});
  CdclResult r = SolveCdcl(sat);
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_TRUE(sat.IsSatisfiedBy(*r.assignment));

  CnfFormula unsat(1);
  unsat.AddClause({1});
  unsat.AddClause({-1});
  EXPECT_FALSE(SolveCdcl(unsat).assignment.has_value());

  CnfFormula tautology(1);
  tautology.AddClause({1, -1});
  EXPECT_TRUE(SolveCdcl(tautology).assignment.has_value());

  CnfFormula unit_chain(3);
  unit_chain.AddClause({1});
  unit_chain.AddClause({-1, 2});
  unit_chain.AddClause({-2, 3});
  CdclResult chain = SolveCdcl(unit_chain);
  ASSERT_TRUE(chain.assignment.has_value());
  EXPECT_TRUE((*chain.assignment)[2]);
}

TEST(Cdcl, MatchesBruteForceOnRandom) {
  Rng rng(231);
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 14));
    int m = static_cast<int>(rng.UniformInt(1, 70));
    CnfFormula f = RandomThreeSat(n, m, &rng);
    CdclResult r = SolveCdcl(f);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.assignment.has_value(), SatisfiableBrute(f))
        << "n=" << n << " m=" << m << " trial=" << trial;
  }
}

TEST(Cdcl, AgreesWithDpllAtScale) {
  Rng rng(232);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 30;
    int m = static_cast<int>(rng.UniformInt(60, 160));  // around threshold
    CnfFormula f = RandomThreeSat(n, m, &rng);
    CdclResult cdcl = SolveCdcl(f);
    DpllResult dpll = SolveDpll(f);
    ASSERT_TRUE(cdcl.complete && dpll.complete);
    EXPECT_EQ(cdcl.assignment.has_value(), dpll.assignment.has_value())
        << "trial=" << trial << " m=" << m;
  }
}

TEST(Cdcl, SolvesPlantedInstancesFast) {
  Rng rng(233);
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(80, 300, &rng);
    CdclResult r = SolveCdcl(f);
    ASSERT_TRUE(r.assignment.has_value());
  }
}

TEST(Cdcl, RefutesPigeonhole) {
  for (int holes : {2, 3, 4, 5}) {
    CdclResult r = SolveCdcl(PigeonholeFormula(holes));
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.assignment.has_value()) << "holes=" << holes;
    EXPECT_GT(r.learned_clauses, 0u);
  }
}

TEST(Cdcl, XorChainsAndBoundedFormulas) {
  Rng rng(234);
  for (int k : {4, 8, 16}) {
    EXPECT_TRUE(SolveCdcl(XorChainFormula(k, true)).assignment.has_value());
    EXPECT_TRUE(SolveCdcl(XorChainFormula(k, false)).assignment.has_value());
  }
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula f = RandomThreeSat(6, 30, &rng);
    CnfFormula bounded = BoundOccurrences(f, 3);
    EXPECT_EQ(SolveCdcl(f).assignment.has_value(),
              SolveCdcl(bounded).assignment.has_value());
  }
}

TEST(Cdcl, ConflictLimitReportsIncomplete) {
  CnfFormula f = PigeonholeFormula(7);  // big enough to need > 2 conflicts
  CdclResult r = SolveCdcl(f, 2);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.assignment.has_value());
}

TEST(Cdcl, StatisticsArePopulated) {
  Rng rng(235);
  CnfFormula f = RandomThreeSat(20, 85, &rng);
  CdclResult r = SolveCdcl(f);
  EXPECT_GT(r.propagations, 0u);
  if (!r.assignment.has_value()) {
    EXPECT_GT(r.conflicts, 0u);
  }
}

TEST(Cdcl, RefutesMediumPigeonholeWithinBudget) {
  // PHP(7,6) has 42 variables; a learner refutes it within a modest
  // conflict budget where naive enumeration would see 2^42 assignments.
  CnfFormula f = PigeonholeFormula(6);
  CdclResult r = SolveCdcl(f, /*conflict_limit=*/2000000);
  ASSERT_TRUE(r.complete) << "conflict budget exhausted";
  EXPECT_FALSE(r.assignment.has_value());
  EXPECT_LT(r.conflicts, 2000000u);
}

}  // namespace
}  // namespace aqo
