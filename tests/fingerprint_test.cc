// Canonical relabeling + fingerprint invariants (qo/fingerprint.h): a
// relabeled instance canonicalizes to bit-identical bytes and the same
// 128-bit fingerprint; the retained permutations are inverse bijections;
// sequences mapped back from canonical labels cost bitwise the same on
// the original instance.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "qo/fingerprint.h"
#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "qo/workloads.h"
#include "util/random.h"

namespace aqo {
namespace {

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return perm;
}

void ExpectSameQonBytes(const QonInstance& a, const QonInstance& b) {
  ASSERT_EQ(a.NumRelations(), b.NumRelations());
  int n = a.NumRelations();
  ASSERT_EQ(a.graph().Edges(), b.graph().Edges());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(a.size(i).Log2(), b.size(i).Log2()) << "size " << i;
  }
  for (const auto& [u, v] : a.graph().Edges()) {
    EXPECT_EQ(a.selectivity(u, v).Log2(), b.selectivity(u, v).Log2());
    EXPECT_EQ(a.AccessCost(u, v).Log2(), b.AccessCost(u, v).Log2());
    EXPECT_EQ(a.AccessCost(v, u).Log2(), b.AccessCost(v, u).Log2());
  }
}

TEST(FingerprintQon, RelabeledDuplicatesShareFingerprintAndBytes) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 14));
    QonInstance inst = RandomQonWorkload(n, &rng);
    std::vector<int> perm = RandomPermutation(n, &rng);
    QonInstance relabeled = PermuteQonInstance(inst, perm);

    CanonicalQon a = CanonicalizeQon(inst);
    CanonicalQon b = CanonicalizeQon(relabeled);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    ExpectSameQonBytes(a.instance, b.instance);
  }
}

TEST(FingerprintQon, PermutationsAreInverseBijections) {
  Rng rng(72);
  QonInstance inst = RandomQonWorkload(9, &rng);
  CanonicalQon canon = CanonicalizeQon(inst);
  int n = inst.NumRelations();
  ASSERT_EQ(static_cast<int>(canon.to_canonical.size()), n);
  ASSERT_EQ(static_cast<int>(canon.from_canonical.size()), n);
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(canon.from_canonical[static_cast<size_t>(
                  canon.to_canonical[static_cast<size_t>(v)])],
              v);
  }
}

TEST(FingerprintQon, MappedBackSequencesCostBitwiseTheSame) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 10));
    QonInstance inst = RandomQonWorkload(n, &rng);
    CanonicalQon canon = CanonicalizeQon(inst);
    OptimizerResult on_canonical = GreedyQonOptimizer(canon.instance);
    ASSERT_TRUE(on_canonical.feasible);
    JoinSequence mapped =
        MapSequenceFromCanonical(on_canonical.sequence, canon.from_canonical);
    EXPECT_EQ(QonSequenceCost(inst, mapped).Log2(),
              on_canonical.cost.Log2());
  }
}

TEST(FingerprintQon, DistinctInstancesGetDistinctFingerprints) {
  Rng rng(74);
  QonInstance a = RandomQonWorkload(8, &rng);
  QonInstance b = RandomQonWorkload(8, &rng);
  EXPECT_FALSE(CanonicalizeQon(a).fingerprint ==
               CanonicalizeQon(b).fingerprint);
}

TEST(FingerprintQoh, RelabeledDuplicatesShareFingerprintAndBytes) {
  Rng rng(75);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 12));
    QohInstance inst = RandomQohWorkload(n, &rng, 0.5);
    std::vector<int> perm = RandomPermutation(n, &rng);
    QohInstance relabeled = PermuteQohInstance(inst, perm);

    CanonicalQoh a = CanonicalizeQoh(inst);
    CanonicalQoh b = CanonicalizeQoh(relabeled);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    ASSERT_EQ(a.instance.graph().Edges(), b.instance.graph().Edges());
    EXPECT_EQ(a.instance.memory(), b.instance.memory());
    EXPECT_EQ(a.instance.eta(), b.instance.eta());
    for (int i = 0; i < a.instance.NumRelations(); ++i) {
      EXPECT_EQ(a.instance.size(i).Log2(), b.instance.size(i).Log2());
    }
    for (const auto& [u, v] : a.instance.graph().Edges()) {
      EXPECT_EQ(a.instance.selectivity(u, v).Log2(),
                b.instance.selectivity(u, v).Log2());
    }
  }
}

TEST(FingerprintQoh, MappedBackSequencesCostBitwiseTheSame) {
  Rng rng(76);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    QohInstance inst = RandomQohWorkload(n, &rng, 0.6);
    CanonicalQoh canon = CanonicalizeQoh(inst);
    QohOptimizerResult on_canonical = GreedyQohOptimizer(canon.instance);
    if (!on_canonical.feasible) continue;
    JoinSequence mapped =
        MapSequenceFromCanonical(on_canonical.sequence, canon.from_canonical);
    PipelineCostResult replay =
        DecompositionCost(inst, mapped, on_canonical.decomposition);
    ASSERT_TRUE(replay.feasible);
    EXPECT_EQ(replay.cost.Log2(), on_canonical.cost.Log2());
  }
}

TEST(FingerprintQoh, DifferentMemoryBudgetsGetDistinctFingerprints) {
  Rng rng(77);
  QohInstance a = RandomQohWorkload(7, &rng, 0.5);
  QohInstance b(a.graph(),
                [&] {
                  std::vector<LogDouble> sizes;
                  for (int i = 0; i < a.NumRelations(); ++i) {
                    sizes.push_back(a.size(i));
                  }
                  return sizes;
                }(),
                a.memory() * 2.0, a.eta());
  for (const auto& [u, v] : a.graph().Edges()) {
    b.SetSelectivity(u, v, a.selectivity(u, v));
  }
  EXPECT_FALSE(CanonicalizeQoh(a).fingerprint ==
               CanonicalizeQoh(b).fingerprint);
}

}  // namespace
}  // namespace aqo
