#include "util/log_double.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace aqo {
namespace {

TEST(LogDouble, DefaultIsZero) {
  LogDouble z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z, LogDouble::Zero());
  EXPECT_EQ(z.ToLinear(), 0.0);
}

TEST(LogDouble, FromLinearRoundTrip) {
  for (double v : {1e-300, 0.25, 1.0, 3.5, 1e10, 1e300}) {
    LogDouble x = LogDouble::FromLinear(v);
    EXPECT_NEAR(x.ToLinear(), v, v * 1e-12);
  }
  EXPECT_TRUE(LogDouble::FromLinear(0.0).IsZero());
}

TEST(LogDouble, MultiplicationAddsExponents) {
  LogDouble a = LogDouble::FromLog2(1e6);
  LogDouble b = LogDouble::FromLog2(2.5e6);
  EXPECT_DOUBLE_EQ((a * b).Log2(), 3.5e6);
  EXPECT_DOUBLE_EQ((b / a).Log2(), 1.5e6);
}

TEST(LogDouble, MultiplicationByZero) {
  LogDouble a = LogDouble::FromLinear(42.0);
  EXPECT_TRUE((a * LogDouble::Zero()).IsZero());
  EXPECT_TRUE((LogDouble::Zero() * a).IsZero());
}

TEST(LogDouble, AdditionMatchesLinearSmallValues) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.UniformReal(0.001, 1000.0);
    double b = rng.UniformReal(0.001, 1000.0);
    LogDouble s = LogDouble::FromLinear(a) + LogDouble::FromLinear(b);
    EXPECT_NEAR(s.ToLinear(), a + b, (a + b) * 1e-12);
  }
}

TEST(LogDouble, AdditionWithZero) {
  LogDouble a = LogDouble::FromLinear(5.0);
  EXPECT_EQ((a + LogDouble::Zero()).Log2(), a.Log2());
  EXPECT_EQ((LogDouble::Zero() + a).Log2(), a.Log2());
}

TEST(LogDouble, AdditionDominatedByHugeOperand) {
  LogDouble huge = LogDouble::FromLog2(1e9);
  LogDouble tiny = LogDouble::FromLog2(10.0);
  EXPECT_DOUBLE_EQ((huge + tiny).Log2(), 1e9);
}

TEST(LogDouble, SubtractionMatchesLinear) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.UniformReal(1.0, 1000.0);
    double b = rng.UniformReal(0.0, a);
    LogDouble d = LogDouble::FromLinear(a) - LogDouble::FromLinear(b);
    EXPECT_NEAR(d.ToLinear(), a - b, 1e-9 * a);
  }
}

TEST(LogDouble, SubtractionOfEqualsIsZero) {
  LogDouble a = LogDouble::FromLog2(123.456);
  EXPECT_TRUE((a - a).IsZero());
}

TEST(LogDouble, PowAndSqrt) {
  LogDouble a = LogDouble::FromLog2(100.0);
  EXPECT_DOUBLE_EQ(a.Pow(3.0).Log2(), 300.0);
  EXPECT_DOUBLE_EQ(a.Pow(-1.0).Log2(), -100.0);
  EXPECT_DOUBLE_EQ(a.Sqrt().Log2(), 50.0);
  EXPECT_EQ(a.Pow(0.0).Log2(), 0.0);
  EXPECT_EQ(LogDouble::Zero().Pow(0.0).Log2(), 0.0);  // empty product
}

TEST(LogDouble, Comparisons) {
  LogDouble a = LogDouble::FromLog2(5.0);
  LogDouble b = LogDouble::FromLog2(6.0);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_LT(LogDouble::Zero(), a);
  EXPECT_EQ(MaxOf(a, b).Log2(), 6.0);
  EXPECT_EQ(MinOf(a, b).Log2(), 5.0);
}

TEST(LogDouble, ApproxEquals) {
  LogDouble a = LogDouble::FromLog2(1e6);
  LogDouble b = LogDouble::FromLog2(1e6 * (1.0 + 1e-12));
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  LogDouble c = LogDouble::FromLog2(1e6 + 1.0);
  EXPECT_FALSE(a.ApproxEquals(c, 1e-9));
  EXPECT_TRUE(LogDouble::Zero().ApproxEquals(LogDouble::Zero()));
  EXPECT_FALSE(LogDouble::Zero().ApproxEquals(a));
}

TEST(LogDouble, GeometricSeriesBound) {
  // The Lemma 6 argument: 1 + 1/alpha + 1/alpha^2 + ... <= 2 for alpha >= 4
  // — check the log-domain sum behaves.
  LogDouble alpha = LogDouble::FromLinear(4.0);
  LogDouble sum = LogDouble::Zero();
  LogDouble term = LogDouble::One();
  for (int i = 0; i < 50; ++i) {
    sum += term;
    term /= alpha;
  }
  EXPECT_LT(sum, LogDouble::FromLinear(4.0 / 3.0 + 1e-9));
  EXPECT_GT(sum, LogDouble::FromLinear(4.0 / 3.0 - 1e-9));
}

TEST(LogDouble, HugeValueArithmeticStaysFinite) {
  // alpha = 4^{n^{1/delta}} with n=50, delta=0.5 -> log2 alpha = 2 * 50^2.
  LogDouble alpha = LogDouble::FromLog2(2.0 * 2500.0);
  LogDouble t = alpha.Pow(37.5);               // t = alpha^{(c-d/2)n}
  LogDouble cost = t.Pow(50.0) * alpha.Pow(-1200.0);
  EXPECT_TRUE(std::isfinite(cost.Log2()));
  EXPECT_GT(cost, LogDouble::One());
}

}  // namespace
}  // namespace aqo
