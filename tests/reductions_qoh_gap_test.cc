// Tests for the f_H reduction (Section 5): forced sentinel-first plans,
// the Lemma 11 intermediate-size bounds, the Lemma 12 witness, and the
// Lemma 13/14 NO-side floor — exhaustively for n = 9.

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qoh.h"
#include "util/random.h"

namespace aqo {
namespace {

// Exhaustive optimum over all sequences that start with relation `first`.
QohPlan BestPlanStartingWith(const QohInstance& inst, int first) {
  int n = inst.NumRelations();
  JoinSequence rest;
  for (int i = 0; i < n; ++i) {
    if (i != first) rest.push_back(i);
  }
  QohPlan best;
  do {
    JoinSequence seq = {first};
    seq.insert(seq.end(), rest.begin(), rest.end());
    QohPlan plan = OptimalDecomposition(inst, seq);
    if (plan.feasible && (!best.feasible || plan.cost < best.cost)) {
      best = plan;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
  return best;
}

TEST(ReduceTwoThirdsCliqueToQoh, ConstructionShape) {
  Graph g = Graph::Complete(9);
  QohGapParams params;  // alpha = 4, eta = 0.5
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, params);
  EXPECT_EQ(gap.instance.NumRelations(), 10);
  // t = 4^4 = 256; t0 = (9 * 256)^12.
  EXPECT_DOUBLE_EQ(gap.t.Log2(), 8.0);
  EXPECT_NEAR(gap.t0.Log2(), 12.0 * std::log2(9.0 * 256.0), 1e-9);
  EXPECT_DOUBLE_EQ(gap.instance.size(0).Log2(), gap.t0.Log2());
  // M = (n/3 - 1) t + 2 hjmin(t) = 2*256 + 2*16.
  EXPECT_DOUBLE_EQ(gap.instance.memory(), 544.0);
  // Spokes 1/2, clique edges 1/alpha.
  EXPECT_DOUBLE_EQ(gap.instance.selectivity(0, 3).Log2(), -1.0);
  EXPECT_DOUBLE_EQ(gap.instance.selectivity(1, 2).Log2(), -2.0);
}

TEST(ReduceTwoThirdsCliqueToQoh, SentinelFirstIsForced) {
  // Any sequence that does not start with R_0 must build a hash table on
  // R_0 and is infeasible.
  Graph g = Graph::Complete(9);
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    JoinSequence seq = IdentitySequence(10);
    rng.Shuffle(&seq);
    QohPlan plan = OptimalDecomposition(gap.instance, seq);
    EXPECT_EQ(plan.feasible, seq[0] == 0) << "trial=" << trial;
  }
}

TEST(Lemma11, WitnessIntermediatesStayBelowL) {
  Graph g = Graph::Complete(9);  // omega = 9 >= 2n/3
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
  std::vector<int> clique = {0, 1, 2, 3, 4, 5};
  QohWitnessPlan plan = QohYesWitness(gap, clique);
  std::vector<LogDouble> prefix = QohPrefixSizes(gap.instance, plan.sequence);
  double l_log2 = gap.LBound().Log2();
  // Paper indices: N_j = prefix[j + 1]; check N_1, N_{n/3}, N_{2n/3},
  // N_{n-1}, N_n (the materialized intermediates).
  for (int j : {1, 3, 6, 8, 9}) {
    EXPECT_LE(prefix[static_cast<size_t>(j) + 1].Log2(), l_log2 + 1e-6)
        << "N_" << j << " exceeds L";
  }
}

TEST(Lemma12, WitnessPlanFeasibleAndCheap) {
  Rng rng(92);
  // A (2/3)CLIQUE YES instance that is not complete: plant a 6-clique.
  std::vector<int> planted;
  Graph g = CliqueClassGraph(9, 3, 0.8, 6, &rng, &planted);
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
  QohWitnessPlan plan = QohYesWitness(gap, planted);
  PipelineCostResult cost =
      DecompositionCost(gap.instance, plan.sequence, plan.decomposition);
  ASSERT_TRUE(cost.feasible);
  // O(L): within a modest constant factor of L(alpha, n).
  EXPECT_LE(cost.cost.Log2(), gap.LBound().Log2() + 4.0);
}

TEST(Lemma12, WitnessPipelineP3StarvesExactlyOneJoin) {
  // P3 has n/3 joins but only n/3 - 1 full hash tables fit: exactly one
  // join runs at hjmin (Lemma 10, case 2).
  Graph g = Graph::Complete(9);
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
  std::vector<int> clique = {0, 1, 2, 3, 4, 5};
  QohWitnessPlan plan = QohYesWitness(gap, clique);
  // P3 covers joins n/3+1 .. 2n/3 = 4..6.
  PipelineCostResult p3 = OptimalPipelineCost(gap.instance, plan.sequence, 4, 6);
  ASSERT_TRUE(p3.feasible);
  double t = gap.t.ToLinear();
  int starved = 0, full = 0;
  for (double m : p3.allocation) {
    if (m == t) {
      ++full;
    } else {
      ++starved;
      // The starved join sits near the floor: it gets hjmin plus the spare
      // hjmin the paper's allocation leaves unused (2 * hjmin(t) = 32).
      EXPECT_LE(m, 2.0 * 16.0);
      EXPECT_GE(m, 16.0);
    }
  }
  EXPECT_EQ(starved, 1);
  EXPECT_EQ(full, 2);
}

TEST(Theorem15, ExhaustiveGapAtN9) {
  // YES: complete source graph (omega = 9); NO: omega = 3 = (2-eps)n/3
  // with eps = 1. The exhaustive optimum must sit below L (times slack) on
  // the YES side and above G (over slack) on the NO side.
  Graph yes_graph = Graph::Complete(9);
  QohGapInstance yes_gap = ReduceTwoThirdsCliqueToQoh(yes_graph, QohGapParams{});
  QohPlan yes_best = BestPlanStartingWith(yes_gap.instance, 0);
  ASSERT_TRUE(yes_best.feasible);
  EXPECT_LE(yes_best.cost.Log2(), yes_gap.LBound().Log2() + 4.0);

  // NO: 3 disjoint triangles plus a perfect matching between them keeps
  // omega = 3; we verify omega with the exact solver.
  Rng rng(93);
  Graph no_graph(9);
  int omega = 9;
  while (omega > 3) {
    no_graph = Gnp(9, 0.33, &rng);
    omega = static_cast<int>(MaxClique(no_graph).clique.size());
  }
  QohGapInstance no_gap = ReduceTwoThirdsCliqueToQoh(no_graph, QohGapParams{});
  QohPlan no_best = BestPlanStartingWith(no_gap.instance, 0);
  ASSERT_TRUE(no_best.feasible);
  double epsilon = 2.0 - 3.0 * omega / 9.0;  // omega = (2-eps) n/3
  EXPECT_GE(no_best.cost.Log2(), no_gap.GBound(epsilon).Log2() - 4.0);

  // And the measured YES/NO gap is at least alpha^{n eps/3 - 1} / slack.
  EXPECT_GE(no_best.cost.Log2() - yes_best.cost.Log2(),
            no_gap.GBound(epsilon).Log2() - no_gap.LBound().Log2() - 8.0);
}

TEST(Theorem15, BoundFormulas) {
  Graph g = Graph::Complete(12);
  QohGapParams params;
  params.log2_alpha = 2.0;
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, params);
  // log L = log t0 + (n^2/9) log alpha.
  EXPECT_DOUBLE_EQ(gap.LBound().Log2(), gap.t0.Log2() + 16.0 * 2.0);
  // G = L * alpha^{n eps/3 - 1}.
  EXPECT_DOUBLE_EQ(gap.GBound(0.5).Log2(),
                   gap.LBound().Log2() + (12.0 * 0.5 / 3.0 - 1.0) * 2.0);
}

}  // namespace
}  // namespace aqo
