// Tests for the QO_N/QO_H optimizer suite: exactness cross-checks and
// feasibility behaviour under the no-cartesian-product restriction.

#include "qo/optimizers.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/ikkbz.h"
#include "util/random.h"

namespace aqo {
namespace {

QonInstance RandomInstance(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.001, 1.0)));
  }
  return inst;
}

TEST(DpOptimizer, MatchesExhaustive) {
  Rng rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 8));
    QonInstance inst = RandomInstance(n, rng.UniformReal(0.2, 1.0), &rng);
    OptimizerResult dp = DpQonOptimizer(inst);
    OptimizerResult ex = ExhaustiveQonOptimizer(inst);
    ASSERT_TRUE(dp.feasible && ex.feasible);
    EXPECT_TRUE(dp.cost.ApproxEquals(ex.cost, 1e-9))
        << "trial=" << trial << ": " << dp.cost.Log2() << " vs "
        << ex.cost.Log2();
  }
}

TEST(DpOptimizer, MatchesExhaustiveNoCartesian) {
  Rng rng(62);
  OptimizerOptions options;
  options.forbid_cartesian = true;
  OptimizerOptions sampling_options = options;
  sampling_options.samples = 20;
  OptimizerOptions ii_options = options;
  ii_options.restarts = 2;
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 8));
    QonInstance inst = RandomInstance(n, rng.UniformReal(0.3, 1.0), &rng);
    OptimizerResult dp = DpQonOptimizer(inst, options);
    OptimizerResult ex = ExhaustiveQonOptimizer(inst, options);
    ASSERT_EQ(dp.feasible, ex.feasible);
    if (dp.feasible) {
      EXPECT_TRUE(dp.cost.ApproxEquals(ex.cost, 1e-9));
      EXPECT_FALSE(HasCartesianProduct(inst.graph(), dp.sequence));
    }
  }
}

TEST(DpOptimizer, InfeasibleOnDisconnectedWhenCartesianForbidden) {
  Rng rng(63);
  Graph g = DisjointUnion(Chain(3), Chain(3));
  std::vector<LogDouble> sizes(6, LogDouble::FromLinear(10.0));
  QonInstance inst(g, sizes);
  OptimizerOptions options;
  options.forbid_cartesian = true;
  OptimizerOptions sampling_options = options;
  sampling_options.samples = 20;
  OptimizerOptions ii_options = options;
  ii_options.restarts = 2;
  EXPECT_FALSE(DpQonOptimizer(inst, options).feasible);
  EXPECT_TRUE(DpQonOptimizer(inst).feasible);
}

TEST(Heuristics, NeverBeatTheOptimumAndStayFeasible) {
  Rng rng(64);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    QonInstance inst = RandomInstance(n, 0.7, &rng);
    OptimizerResult opt = DpQonOptimizer(inst);
    ASSERT_TRUE(opt.feasible);

    OptimizerResult greedy = GreedyQonOptimizer(inst);
    ASSERT_TRUE(greedy.feasible);
    EXPECT_GE(greedy.cost.Log2(), opt.cost.Log2() - 1e-9);
    EXPECT_TRUE(IsPermutation(greedy.sequence, n));

    OptimizerOptions sample_options;
    sample_options.samples = 50;
    OptimizerResult sampled = RandomSamplingOptimizer(inst, &rng, sample_options);
    ASSERT_TRUE(sampled.feasible);
    EXPECT_GE(sampled.cost.Log2(), opt.cost.Log2() - 1e-9);

    OptimizerOptions ii_options;
    ii_options.restarts = 3;
    OptimizerResult ii = IterativeImprovementOptimizer(inst, &rng, ii_options);
    ASSERT_TRUE(ii.feasible);
    EXPECT_GE(ii.cost.Log2(), opt.cost.Log2() - 1e-9);

    OptimizerOptions sa_options;
    sa_options.sa.iterations = 2000;
    sa_options.sa.restarts = 2;
    OptimizerResult sa = SimulatedAnnealingOptimizer(inst, &rng, sa_options);
    ASSERT_TRUE(sa.feasible);
    EXPECT_GE(sa.cost.Log2(), opt.cost.Log2() - 1e-9);
  }
}

TEST(Heuristics, LocalSearchFindsOptimumOnTinyInstances) {
  Rng rng(65);
  int hits = 0;
  for (int trial = 0; trial < 20; ++trial) {
    QonInstance inst = RandomInstance(5, 0.8, &rng);
    OptimizerResult opt = DpQonOptimizer(inst);
    OptimizerOptions ii_options;
    ii_options.restarts = 8;
    OptimizerResult ii = IterativeImprovementOptimizer(inst, &rng, ii_options);
    if (ii.cost.ApproxEquals(opt.cost, 1e-6)) ++hits;
  }
  EXPECT_GE(hits, 15);  // 2-swap local search cracks most 5-relation cases
}

TEST(Heuristics, RespectCartesianRestriction) {
  Rng rng(66);
  OptimizerOptions options;
  options.forbid_cartesian = true;
  OptimizerOptions sampling_options = options;
  sampling_options.samples = 20;
  OptimizerOptions ii_options = options;
  ii_options.restarts = 2;
  for (int trial = 0; trial < 10; ++trial) {
    QonInstance inst = RandomInstance(8, 0.5, &rng);
    if (!inst.graph().IsConnected()) continue;
    for (const OptimizerResult& r :
         {GreedyQonOptimizer(inst, options),
          RandomSamplingOptimizer(inst, &rng, sampling_options),
          IterativeImprovementOptimizer(inst, &rng, ii_options)}) {
      ASSERT_TRUE(r.feasible);
      EXPECT_FALSE(HasCartesianProduct(inst.graph(), r.sequence));
    }
  }
}

TEST(QohOptimizers, ExhaustiveFindsFeasiblePlanAndGreedyNeverBeatsIt) {
  Rng rng(67);
  for (int trial = 0; trial < 15; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 6));
    Graph g = Gnp(n, 0.7, &rng);
    std::vector<LogDouble> sizes(static_cast<size_t>(n),
                                 LogDouble::FromLinear(64.0));
    QohInstance inst(g, sizes, rng.UniformReal(50.0, 400.0));
    for (const auto& [u, v] : g.Edges()) {
      inst.SetSelectivity(u, v, LogDouble::FromLinear(0.5));
    }
    QohOptimizerResult ex = ExhaustiveQohOptimizer(inst);
    ASSERT_TRUE(ex.feasible);
    QohOptimizerResult greedy = GreedyQohOptimizer(inst);
    if (greedy.feasible) {
      EXPECT_GE(greedy.cost.Log2(), ex.cost.Log2() - 1e-9);
    }
  }
}

TEST(Ikkbz, MatchesDpOnRandomTrees) {
  Rng rng(68);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 10));
    Graph g = RandomTree(n, &rng);
    std::vector<LogDouble> sizes;
    for (int i = 0; i < n; ++i) {
      sizes.push_back(LogDouble::FromLinear(
          static_cast<double>(rng.UniformInt(2, 10000))));
    }
    QonInstance inst(g, std::move(sizes));
    for (const auto& [u, v] : g.Edges()) {
      inst.SetSelectivity(u, v,
                          LogDouble::FromLinear(rng.UniformReal(0.001, 1.0)));
    }
    OptimizerOptions options;
    options.forbid_cartesian = true;
    OptimizerResult dp = DpQonOptimizer(inst, options);
    OptimizerResult kbz = IkkbzOptimizer(inst);
    ASSERT_TRUE(dp.feasible && kbz.feasible);
    EXPECT_TRUE(kbz.cost.ApproxEquals(dp.cost, 1e-6))
        << "trial=" << trial << " n=" << n << ": kbz=" << kbz.cost.Log2()
        << " dp=" << dp.cost.Log2();
    EXPECT_FALSE(HasCartesianProduct(g, kbz.sequence));
  }
}

TEST(Ikkbz, HandlesChainsAndStars) {
  Rng rng(69);
  for (const Graph& g : {Chain(12), Star(12)}) {
    std::vector<LogDouble> sizes;
    for (int i = 0; i < 12; ++i) {
      sizes.push_back(LogDouble::FromLinear(
          static_cast<double>(rng.UniformInt(2, 500))));
    }
    QonInstance inst(g, std::move(sizes));
    for (const auto& [u, v] : g.Edges()) {
      inst.SetSelectivity(u, v,
                          LogDouble::FromLinear(rng.UniformReal(0.01, 1.0)));
    }
    OptimizerResult kbz = IkkbzOptimizer(inst);
    ASSERT_TRUE(kbz.feasible);
    EXPECT_TRUE(IsPermutation(kbz.sequence, 12));
    EXPECT_FALSE(HasCartesianProduct(g, kbz.sequence));
  }
}

TEST(Ikkbz, RejectsNonTrees) {
  EXPECT_FALSE(IsTreeQueryGraph(Cycle(5)));
  EXPECT_FALSE(IsTreeQueryGraph(DisjointUnion(Chain(2), Chain(2))));
  EXPECT_TRUE(IsTreeQueryGraph(Chain(5)));
  EXPECT_TRUE(IsTreeQueryGraph(Star(5)));
}

}  // namespace
}  // namespace aqo
