// Parameterized property sweeps (TEST_P) over the invariants the paper's
// lemmas rely on: the hash-join cost axioms for every eta, homogeneity of
// the QO_N cost model, gap soundness across (alpha, d) parameterizations,
// and seed sweeps of the reduction chains.

#include <algorithm>
#include <cmath>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "obs/runlog.h"
#include "qo/adaptive.h"
#include "qo/analysis.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qon.h"
#include "reductions/sat_to_clique.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

// --- QO_H cost axioms (paper Section 2.2, properties 1-4 of g) ---

class QohAxiomSweep : public ::testing::TestWithParam<double> {};

TEST_P(QohAxiomSweep, HashJoinCostSatisfiesTheFourAxioms) {
  double eta = GetParam();
  Graph g = Chain(2);
  double inner = 4096.0;
  std::vector<LogDouble> sizes = {LogDouble::FromLinear(512.0),
                                  LogDouble::FromLinear(inner)};
  double hjmin = std::ceil(std::pow(inner, eta));

  auto cost_at_memory = [&](double memory) {
    QohInstance inst(g, sizes, memory, eta);
    inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
    PipelineCostResult r = OptimalPipelineCost(inst, {0, 1}, 1, 1);
    EXPECT_TRUE(r.feasible);
    return r.cost.ToLinear();
  };

  // Axiom 1: linear decreasing on [hjmin, b]. Check monotone decreasing
  // and exact midpoint linearity.
  double lo = cost_at_memory(hjmin);
  double mid = cost_at_memory((hjmin + inner) / 2.0);
  double hi = cost_at_memory(inner);
  EXPECT_GT(lo, mid);
  EXPECT_GT(mid, hi);
  EXPECT_NEAR(mid, (lo + hi) / 2.0, 1e-6 * lo);

  // Axiom 2: g = 0 for m >= b: cost flat beyond the inner size.
  EXPECT_NEAR(cost_at_memory(inner * 4.0), hi, 1e-9);

  // Axiom 4: h(hjmin) = Theta(b_R + b_S): full probe re-read plus build
  // plus materialization bookkeeping.
  double n_out = 512.0 * inner * 0.5;
  EXPECT_NEAR(lo, 512.0 + (512.0 + inner) * 1.0 + inner + n_out, 1e-6 * lo);

  // Feasibility boundary: below hjmin the join cannot run.
  QohInstance starved(g, sizes, hjmin - 1.0, eta);
  starved.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  EXPECT_FALSE(OptimalPipelineCost(starved, {0, 1}, 1, 1).feasible);
}

INSTANTIATE_TEST_SUITE_P(EtaSweep, QohAxiomSweep,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75));

// --- QO_N cost model homogeneity ---

class QonHomogeneitySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(QonHomogeneitySweep, ScalingAllSizesScalesPrefixes) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  QonInstance inst = RandomQonWorkload(n, &rng);
  LogDouble factor = LogDouble::FromLinear(7.0);

  QonInstance scaled(inst.graph(), [&] {
    std::vector<LogDouble> s;
    for (int i = 0; i < n; ++i) s.push_back(inst.size(i) * factor);
    return s;
  }());
  for (const auto& [u, v] : inst.graph().Edges()) {
    scaled.SetSelectivity(u, v, inst.selectivity(u, v));
  }

  JoinSequence seq = IdentitySequence(n);
  rng.Shuffle(&seq);
  std::vector<LogDouble> base = PrefixSizes(inst, seq);
  std::vector<LogDouble> big = PrefixSizes(scaled, seq);
  for (size_t k = 0; k < base.size(); ++k) {
    // N scales by factor^k (one factor per member relation).
    EXPECT_TRUE((base[k] * factor.Pow(static_cast<double>(k)))
                    .ApproxEquals(big[k], 1e-9))
        << "prefix length " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, QonHomogeneitySweep,
    ::testing::Combine(::testing::Values(4, 7, 10),
                       ::testing::Values(uint64_t{1}, uint64_t{99},
                                         uint64_t{2024})));

// --- fast evaluation tier: certified error bound (qo/fast_eval.h) ---

// The fast tier's contract is an interval argument over the fold length;
// this sweep is the empirical side: across 1000 seeded instances, every
// fast price (base cost and every adjacent-swap candidate) lands within
// EpsLog2() of the exact evaluator.
TEST(FastEvalCertifiedBound, QonThousandSeedSweep) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    int n = 2 + static_cast<int>(rng.UniformInt(0, 28));
    QonInstance inst = RandomQonWorkload(n, &rng);
    QonCostEvaluator exact(inst);
    QonNeighborhoodEvaluator fast(inst);
    double eps = fast.EpsLog2();

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    LogDouble base = exact.Cost(seq);
    fast.Load(seq);
    ASSERT_NEAR(fast.BaseCostLog2(), base.Log2(), eps)
        << "seed=" << seed << " n=" << n;
    const double* adjacent = fast.PriceAdjacentAll();
    for (int i = 0; i + 1 < n; ++i) {
      LogDouble probe = exact.CostAfterSwap(i, i + 1);
      exact.CostAfterSwap(i, i + 1);  // restore
      ASSERT_NEAR(adjacent[i], probe.Log2(), eps)
          << "seed=" << seed << " n=" << n << " i=" << i;
    }
  }
}

TEST(FastEvalCertifiedBound, QohThousandSeedSweep) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
    QohInstance inst = RandomQohWorkload(n, &rng);
    QohCostEvaluator exact(inst);
    QohNeighborhoodEvaluator fast(inst);
    double eps = fast.EpsLog2();

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    const QohPlan& base = exact.Evaluate(seq);
    fast.Load(seq);
    ASSERT_EQ(fast.BaseFeasible(), base.feasible) << "seed=" << seed;
    if (base.feasible) {
      ASSERT_NEAR(fast.BaseCostLog2(), base.cost.Log2(), eps)
          << "seed=" << seed << " n=" << n;
    }
    for (int i = 0; i + 1 < n; ++i) {
      JoinSequence swapped = seq;
      std::swap(swapped[static_cast<size_t>(i)],
                swapped[static_cast<size_t>(i + 1)]);
      const QohPlan& probe = exact.Evaluate(swapped);
      bool want_feasible = probe.feasible;
      double want = probe.feasible ? probe.cost.Log2() : 0.0;
      exact.Evaluate(seq);  // restore
      bool feasible = false;
      double got = fast.PriceSwap(i, i + 1, &feasible);
      ASSERT_EQ(feasible, want_feasible)
          << "seed=" << seed << " n=" << n << " i=" << i;
      if (want_feasible) {
        ASSERT_NEAR(got, want, eps)
            << "seed=" << seed << " n=" << n << " i=" << i;
      }
    }
  }
}

// The re-pricing contract the optimizers rely on: rank candidates with
// the fast tier, exactly re-price only those within 2*eps of the fast
// minimum, and the resulting argmin (lowest index on exact ties) is the
// argmin a fully exact pass would pick. Any candidate outside the 2*eps
// band is certified non-minimal, so skipping its exact evaluation is
// lossless — even on instances where every swap is exactly cost-neutral.
TEST(FastEvalCertifiedBound, RepricedArgminMatchesExactArgmin) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    int n = 4 + static_cast<int>(rng.UniformInt(0, 12));
    QonInstance inst = RandomQonWorkload(n, &rng);
    QonCostEvaluator exact(inst);
    QonNeighborhoodEvaluator fast(inst);
    double eps = fast.EpsLog2();

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    exact.Cost(seq);
    fast.Load(seq);
    const double* prices = fast.PriceAdjacentAll();

    double fast_min = prices[0];
    for (int i = 1; i + 1 < n; ++i) fast_min = std::min(fast_min, prices[i]);

    int repriced_argmin = -1;
    LogDouble repriced_best;
    for (int i = 0; i + 1 < n; ++i) {
      if (prices[i] > fast_min + 2.0 * eps) continue;  // certified non-min
      LogDouble cost = exact.CostAfterSwap(i, i + 1);
      exact.CostAfterSwap(i, i + 1);  // restore
      if (repriced_argmin < 0 || cost < repriced_best) {
        repriced_best = cost;
        repriced_argmin = i;
      }
    }

    int exact_argmin = -1;
    LogDouble exact_best;
    for (int i = 0; i + 1 < n; ++i) {
      LogDouble cost = exact.CostAfterSwap(i, i + 1);
      exact.CostAfterSwap(i, i + 1);  // restore
      if (exact_argmin < 0 || cost < exact_best) {
        exact_best = cost;
        exact_argmin = i;
      }
    }
    ASSERT_EQ(repriced_argmin, exact_argmin) << "seed=" << seed << " n=" << n;
    ASSERT_EQ(repriced_best.Log2(), exact_best.Log2()) << "seed=" << seed;
  }
}

// --- f_N gap soundness across parameterizations ---

class GapSoundnessSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GapSoundnessSweep, CertifiedFloorNeverExceedsTrueOptimum) {
  auto [log2_alpha, d] = GetParam();
  Rng rng(static_cast<uint64_t>(log2_alpha * 100 + d * 10));
  for (int trial = 0; trial < 8; ++trial) {
    int n = static_cast<int>(rng.UniformInt(6, 11));
    Graph g = Gnp(n, rng.UniformReal(0.3, 0.9), &rng);
    QonGapParams params{.c = 0.8, .d = d, .log2_alpha = log2_alpha};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    int omega = static_cast<int>(MaxClique(g).clique.size());
    OptimizerResult opt = DpQonOptimizer(gap.instance);
    ASSERT_TRUE(opt.feasible);
    EXPECT_GE(opt.cost.Log2() + 1e-6,
              gap.CertifiedLowerBound(omega).Log2())
        << "alpha=2^" << log2_alpha << " d=" << d << " n=" << n;
  }
}

TEST_P(GapSoundnessSweep, WitnessRespectsKOnDenseYesInstances) {
  auto [log2_alpha, d] = GetParam();
  Rng rng(static_cast<uint64_t>(log2_alpha * 7 + d * 31));
  int n = 90;
  int clique = 2 * n / 3;
  std::vector<int> planted;
  Graph g = CliqueClassGraph(n, 13, 1.0, clique, &rng, &planted);
  QonGapParams params{.c = 2.0 / 3.0, .d = d, .log2_alpha = log2_alpha};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  JoinSequence witness = CliqueFirstWitness(g, planted);
  // Lemma 6 regime requires n >= 30/d; these parameters satisfy it.
  ASSERT_GE(n, static_cast<int>(30.0 / d));
  EXPECT_LE(QonSequenceCost(gap.instance, witness).Log2(),
            gap.KBound().Log2() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaDSweep, GapSoundnessSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 12.0),
                       ::testing::Values(1.0 / 3.0, 0.4, 0.5)));

// --- Lemma 3/4 agreement across formula shapes ---

struct FormulaShape {
  int vars;
  int clauses;
};

class CliqueReductionSweep : public ::testing::TestWithParam<FormulaShape> {};

TEST_P(CliqueReductionSweep, OmegaTracksMinUnsat) {
  FormulaShape shape = GetParam();
  Rng rng(static_cast<uint64_t>(shape.vars * 100 + shape.clauses));
  for (int trial = 0; trial < 5; ++trial) {
    CnfFormula f = RandomThreeSat(shape.vars, shape.clauses, &rng);
    int u_star = f.NumClauses() - MaxSatisfiableClauses(f);
    SatToCliqueResult r = ReduceSatToClique(f);
    EXPECT_EQ(static_cast<int>(MaxClique(r.graph).clique.size()),
              r.CliqueSizeForUnsat(u_star));
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, CliqueReductionSweep,
                         ::testing::Values(FormulaShape{3, 2},
                                           FormulaShape{3, 5},
                                           FormulaShape{4, 4},
                                           FormulaShape{5, 3}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.vars) + "m" +
                                  std::to_string(info.param.clauses);
                         });

// --- Metamorphic invariants of the optimizers and the parallel sweep ---

// Relabels relation i as perm[i]. The optimal cost is invariant: the cost
// model only consults sizes, selectivities and access paths through the
// relation's identity, never its numeric id.
QonInstance PermuteQon(const QonInstance& inst, const std::vector<int>& perm) {
  int n = inst.NumRelations();
  Graph g(n);
  for (const auto& [u, v] : inst.graph().Edges()) {
    g.AddEdge(perm[static_cast<size_t>(u)], perm[static_cast<size_t>(v)]);
  }
  std::vector<LogDouble> sizes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sizes[static_cast<size_t>(perm[static_cast<size_t>(i)])] = inst.size(i);
  }
  QonInstance out(g, std::move(sizes));
  for (const auto& [u, v] : inst.graph().Edges()) {
    out.SetSelectivity(perm[static_cast<size_t>(u)],
                       perm[static_cast<size_t>(v)], inst.selectivity(u, v));
  }
  return out;
}

QonInstance RandomQonInstance(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(10, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.001, 0.8)));
  }
  return inst;
}

TEST(RelabelingInvariance, QonOptimalCostSurvivesRelationPermutation) {
  Rng rng(424242);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 9));
    QonInstance inst = RandomQonInstance(n, rng.UniformReal(0.3, 0.9), &rng);
    std::vector<int> perm = IdentitySequence(n);
    rng.Shuffle(&perm);
    QonInstance relabeled = PermuteQon(inst, perm);

    OptimizerResult base = DpQonOptimizer(inst);
    OptimizerResult mapped = DpQonOptimizer(relabeled);
    ASSERT_TRUE(base.feasible);
    ASSERT_TRUE(mapped.feasible);
    EXPECT_TRUE(mapped.cost.ApproxEquals(base.cost, 1e-9))
        << "n=" << n << " trial=" << trial;

    // The relabeled image of the original optimal sequence costs the
    // optimum in the relabeled instance.
    JoinSequence image;
    for (int v : base.sequence) image.push_back(perm[static_cast<size_t>(v)]);
    EXPECT_TRUE(
        QonSequenceCost(relabeled, image).ApproxEquals(mapped.cost, 1e-9));
  }
}

TEST(RelabelingInvariance, QohOptimalCostSurvivesRelationPermutation) {
  Rng rng(535353);
  int n = 5;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = ConnectedWithEdgeBudget(
        n, static_cast<int>(rng.UniformInt(n - 1, n * (n - 1) / 2)), &rng);
    std::vector<LogDouble> sizes;
    for (int i = 0; i < n; ++i) {
      sizes.push_back(LogDouble::FromLinear(
          static_cast<double>(rng.UniformInt(16, 4096))));
    }
    QohInstance inst(g, sizes, /*memory=*/512.0, /*eta=*/0.5);
    for (const auto& [u, v] : g.Edges()) {
      inst.SetSelectivity(u, v,
                          LogDouble::FromLinear(rng.UniformReal(0.01, 0.9)));
    }
    std::vector<int> perm = IdentitySequence(n);
    rng.Shuffle(&perm);
    Graph pg(n);
    for (const auto& [u, v] : g.Edges()) {
      pg.AddEdge(perm[static_cast<size_t>(u)], perm[static_cast<size_t>(v)]);
    }
    std::vector<LogDouble> psizes(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      psizes[static_cast<size_t>(perm[static_cast<size_t>(i)])] = sizes[
          static_cast<size_t>(i)];
    }
    QohInstance relabeled(pg, psizes, inst.memory(), inst.eta());
    for (const auto& [u, v] : g.Edges()) {
      relabeled.SetSelectivity(perm[static_cast<size_t>(u)],
                               perm[static_cast<size_t>(v)],
                               inst.selectivity(u, v));
    }

    // Brute-force QO_H optimum: best decomposition over all n! sequences.
    auto optimum = [n](const QohInstance& in) {
      JoinSequence seq = IdentitySequence(n);
      bool found = false;
      LogDouble best;
      do {
        QohPlan plan = OptimalDecomposition(in, seq);
        if (plan.feasible && (!found || plan.cost < best)) {
          found = true;
          best = plan.cost;
        }
      } while (std::next_permutation(seq.begin(), seq.end()));
      EXPECT_TRUE(found);
      return best;
    };
    EXPECT_TRUE(optimum(relabeled).ApproxEquals(optimum(inst), 1e-9))
        << "trial=" << trial;
  }
}

// The adaptive meta-optimizer decides in canonical (1-WL) space, so a
// relabeled instance — same canonical class, different numeric ids — gets
// the SAME decision: cost bits and evaluation counts match, and each
// returned sequence prices correctly on its own labeling. Swept through
// the service too, threads x {cache off, cache on}, where the feedback
// store (not the plan cache) carries the state.
TEST(RelabelingInvariance, AdaptiveDecisionsSurviveRelationPermutation) {
  Rng rng(646464);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 8));
    QonInstance inst = RandomQonInstance(n, rng.UniformReal(0.4, 0.9), &rng);
    std::vector<int> perm = IdentitySequence(n);
    rng.Shuffle(&perm);
    QonInstance relabeled = PermuteQon(inst, perm);

    FeedbackStore store_a;
    OptimizerOptions options;
    options.adaptive.store = &store_a;
    OptimizerResult base = AdaptiveQonOptimizer(inst, options, nullptr);

    FeedbackStore store_b;
    options.adaptive.store = &store_b;
    OptimizerResult mapped = AdaptiveQonOptimizer(relabeled, options, nullptr);

    ASSERT_TRUE(base.feasible);
    ASSERT_TRUE(mapped.feasible);
    EXPECT_EQ(base.cost.Log2(), mapped.cost.Log2()) << "trial=" << trial;
    EXPECT_EQ(base.evaluations, mapped.evaluations) << "trial=" << trial;
    EXPECT_EQ(QonSequenceCost(inst, base.sequence).Log2(), base.cost.Log2());
    EXPECT_EQ(QonSequenceCost(relabeled, mapped.sequence).Log2(),
              mapped.cost.Log2());
  }
}

TEST(RelabelingInvariance, AdaptiveServiceBatchAcrossThreadsAndCache) {
  Rng rng(656565);
  std::vector<QonInstance> batch;
  for (int b = 0; b < 3; ++b) {
    QonInstance base = RandomQonInstance(7, 0.6, &rng);
    std::vector<int> perm = IdentitySequence(7);
    rng.Shuffle(&perm);
    batch.push_back(base);
    batch.push_back(PermuteQon(base, perm));
  }

  auto run = [&batch](int threads, bool with_cache) {
    FeedbackStore store;
    PlanCache cache;
    BatchOptions options;
    options.optimizer = "adaptive";
    options.seed = 9;
    options.qon.adaptive.store = &store;
    options.cache = with_cache ? &cache : nullptr;
    if (threads > 1) {
      ThreadPool pool(threads);
      options.pool = &pool;
      return OptimizeQonBatch(batch, options);
    }
    return OptimizeQonBatch(batch, options);
  };

  std::vector<QonBatchItem> reference = run(1, false);
  // Relabeled pairs decide identically.
  for (size_t i = 0; i + 1 < reference.size(); i += 2) {
    EXPECT_EQ(reference[i].result.cost.Log2(),
              reference[i + 1].result.cost.Log2())
        << "pair " << i;
    EXPECT_EQ(reference[i].fingerprint, reference[i + 1].fingerprint);
  }
  for (int threads : {1, 2, 4}) {
    for (bool with_cache : {false, true}) {
      std::vector<QonBatchItem> other = run(threads, with_cache);
      ASSERT_EQ(reference.size(), other.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].result.cost.Log2(),
                  other[i].result.cost.Log2())
            << "threads=" << threads << " cache=" << with_cache << " item "
            << i;
        EXPECT_EQ(reference[i].result.sequence, other[i].result.sequence)
            << "threads=" << threads << " cache=" << with_cache << " item "
            << i;
      }
    }
  }
}

// A sweep's results — and the order and content of its run-log records —
// are identical for every thread count. This is the SweepRunner contract
// that lets every bench default --threads to the hardware width.
TEST(ThreadsInvariance, SweepResultsAndRunLogIdenticalAcrossThreadCounts) {
  constexpr size_t kCells = 24;
  auto sweep_once = [&](int threads, std::string* log_text) {
    std::ostringstream log;
    obs::RunLog::AttachGlobal(&log);
    ThreadPool pool(threads);
    bench::SweepRunner sweep(&pool, /*base_seed=*/777);
    std::vector<double> costs = sweep.Map<double>(
        kCells, [](size_t index, Rng* rng) {
          int n = 5 + static_cast<int>(index % 4);
          QonInstance inst = RandomQonInstance(n, 0.7, rng);
          obs::InstanceShape shape{.family = "qon",
                                   .kind = "threads_invariance",
                                   .side = "",
                                   .source = "",
                                   .n = n,
                                   .edges = inst.graph().NumEdges()};
          OptimizerResult greedy = obs::InstrumentedRun(
              "qon.greedy", shape, [&] { return GreedyQonOptimizer(inst); });
          OptimizerResult dp = obs::InstrumentedRun(
              "qon.dp", shape, [&] { return DpQonOptimizer(inst); });
          return greedy.cost.Log2() - dp.cost.Log2();
        });
    obs::RunLog::CloseGlobal();
    // Timings are the one legitimately varying field; blank them before
    // comparing record streams.
    *log_text = std::regex_replace(log.str(),
                                   std::regex("\"wall_seconds\":[0-9.eE+-]+"),
                                   "\"wall_seconds\":0");
    return costs;
  };

  std::string log1;
  std::vector<double> costs1 = sweep_once(1, &log1);
  ASSERT_EQ(costs1.size(), kCells);
  EXPECT_FALSE(log1.empty());
  for (int threads : {2, 8}) {
    std::string log_n;
    std::vector<double> costs_n = sweep_once(threads, &log_n);
    EXPECT_EQ(costs1, costs_n) << "threads=" << threads;  // exact doubles
    EXPECT_EQ(log1, log_n) << "threads=" << threads;
  }
}

// The parallel DP is a drop-in for the serial DP inside any consumer:
// same cost bits, same sequence, same evaluations (the differential
// harness covers this exhaustively; this is the quick tier-agnostic
// smoke of the same contract).
TEST(ThreadsInvariance, DpOptimizerIndependentOfPoolSize) {
  Rng rng(868686);
  QonInstance inst = RandomQonInstance(11, 0.6, &rng);
  OptimizerResult serial = DpQonOptimizerSerial(inst);
  ASSERT_TRUE(serial.feasible);
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    OptimizerResult parallel = DpQonOptimizerParallel(inst, &pool);
    ASSERT_TRUE(parallel.feasible);
    EXPECT_EQ(parallel.cost.Log2(), serial.cost.Log2());
    EXPECT_EQ(parallel.sequence, serial.sequence);
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

// --- Plan cache under relabeling (qo/service.h) ---
//
// Property: optimize an instance, then submit a relabeled duplicate
// through the same cache. The duplicate must be served from the cache,
// its mapped-back sequence must cost bitwise what the result claims on
// the *relabeled* instance, and the whole result must be bit-identical
// to a cold (cache-off) run — the cache can only memoize what
// recomputation would reproduce.
TEST(PlanCacheProperty, CacheHitUnderRelabelingMatchesColdRun) {
  Rng rng(507);
  for (int trial = 0; trial < 15; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 12));
    QonInstance base = RandomQonWorkload(n, &rng);
    std::vector<int> perm(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) perm[static_cast<size_t>(v)] = v;
    rng.Shuffle(&perm);
    QonInstance relabeled = PermuteQonInstance(base, perm);

    BatchOptions options;
    options.optimizer = (trial % 2 == 0) ? "sa" : "greedy";
    options.qon.sa.iterations = 400;
    options.qon.sa.restarts = 1;
    options.seed = static_cast<uint64_t>(trial);
    PlanCache cache;
    options.cache = &cache;

    std::vector<QonBatchItem> first = OptimizeQonBatch({base}, options);
    std::vector<QonBatchItem> second = OptimizeQonBatch({relabeled}, options);
    ASSERT_EQ(second.size(), 1u);
    ASSERT_TRUE(second[0].from_cache) << "trial " << trial;
    EXPECT_EQ(first[0].fingerprint, second[0].fingerprint);

    BatchOptions cold = options;
    cold.cache = nullptr;
    std::vector<QonBatchItem> fresh = OptimizeQonBatch({relabeled}, cold);
    ASSERT_TRUE(fresh[0].result.feasible);
    ASSERT_TRUE(second[0].result.feasible);
    EXPECT_EQ(second[0].result.cost.Log2(), fresh[0].result.cost.Log2());
    EXPECT_EQ(second[0].result.sequence, fresh[0].result.sequence);
    EXPECT_EQ(second[0].result.evaluations, fresh[0].result.evaluations);
    // The mapped-back sequence really evaluates to the claimed bits on
    // the relabeled instance.
    EXPECT_EQ(QonSequenceCost(relabeled, second[0].result.sequence).Log2(),
              second[0].result.cost.Log2());
  }
}

// --- Anytime budgets (util/cancellation.h, docs/robustness.md) ---
//
// The RunGuard never consumes RNG state, so a budget-capped run's
// trajectory is an exact prefix of the uncapped run's. Two properties
// follow, locked in here:
//
//   1. Monotonicity: for the stochastic optimizers, best-so-far cost is
//      non-increasing as budget_evals grows (same seed).
//   2. Identity at infinity: an astronomically large cap reproduces the
//      uncapped run bit for bit, status kComplete included.

TEST(AnytimeBudget, StochasticBestSoFarMonotoneInBudget) {
  Rng workload_rng(601);
  QonInstance inst = RandomQonWorkload(10, &workload_rng);
  const uint64_t budgets[] = {25, 50, 100, 200, 400, 800, 1600};
  for (const char* name : {"random", "sa", "ii", "ga"}) {
    OptimizerOptions options;
    options.samples = 500;
    options.restarts = 4;
    options.sa.iterations = 600;
    options.sa.restarts = 2;
    options.ga.population = 20;
    options.ga.generations = 30;

    auto run_with_cap = [&](uint64_t cap) {
      OptimizerOptions capped = options;
      capped.budget.max_evaluations = cap;
      Rng rng(99);  // same seed every run: trajectories share a prefix
      return OptimizerRegistry::Qon().Run(name, inst, capped, &rng);
    };

    OptimizerResult uncapped = run_with_cap(0);
    ASSERT_TRUE(uncapped.feasible) << name;
    EXPECT_EQ(uncapped.status, PlanStatus::kComplete) << name;

    double prev = std::numeric_limits<double>::infinity();
    for (uint64_t cap : budgets) {
      OptimizerResult r = run_with_cap(cap);
      ASSERT_TRUE(r.feasible) << name << " cap=" << cap;
      EXPECT_LE(r.cost.Log2(), prev) << name << " cap=" << cap;
      // Valid plan: the claimed cost is the sequence's actual cost.
      EXPECT_EQ(QonSequenceCost(inst, r.sequence).Log2(), r.cost.Log2())
          << name << " cap=" << cap;
      prev = r.cost.Log2();
    }
    // The uncapped result can never be worse than any capped one.
    EXPECT_LE(uncapped.cost.Log2(), prev) << name;
  }
}

TEST(AnytimeBudget, HugeCapReproducesUncappedBitExactly) {
  Rng workload_rng(602);
  QonInstance inst = RandomQonWorkload(8, &workload_rng);
  OptimizerOptions options;
  options.samples = 100;
  options.restarts = 2;
  options.sa.iterations = 300;
  options.sa.restarts = 1;
  options.ga.population = 16;
  options.ga.generations = 8;
  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    Rng rng_uncapped(7);
    OptimizerResult uncapped =
        OptimizerRegistry::Qon().Run(name, inst, options, &rng_uncapped);

    OptimizerOptions huge = options;
    huge.budget.max_evaluations = ~0ull;  // armed but unreachable
    Rng rng_capped(7);
    OptimizerResult capped =
        OptimizerRegistry::Qon().Run(name, inst, huge, &rng_capped);

    EXPECT_EQ(capped.feasible, uncapped.feasible) << name;
    EXPECT_EQ(capped.cost.Log2(), uncapped.cost.Log2()) << name;
    EXPECT_EQ(capped.sequence, uncapped.sequence) << name;
    EXPECT_EQ(capped.evaluations, uncapped.evaluations) << name;
    EXPECT_EQ(capped.status, PlanStatus::kComplete) << name;
    EXPECT_EQ(uncapped.status, PlanStatus::kComplete) << name;
  }
}

// Acceptance sweep: a tightly capped run of EVERY registry optimizer
// returns a valid (cost-consistent) best-so-far plan with status
// budget_exhausted, deterministically across repeat runs and — for the
// pool-aware DP — across thread counts (the capped DP always takes the
// serial path, qo/optimizers.cc).
TEST(AnytimeBudget, EveryQonOptimizerReturnsBestSoFarUnderTightCap) {
  Rng workload_rng(603);
  WorkloadOptions tree;
  tree.shape = WorkloadShape::kTree;  // trees: kbz is feasible too
  QonInstance inst = RandomQonWorkload(8, &workload_rng, tree);

  OptimizerOptions options;
  options.samples = 100;
  options.restarts = 3;
  options.sa.iterations = 300;
  options.sa.restarts = 2;
  options.ga.population = 16;
  options.ga.generations = 8;
  options.budget.max_evaluations = 5;

  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    Rng rng_a(11);
    OptimizerResult a = OptimizerRegistry::Qon().Run(name, inst, options, &rng_a);
    ASSERT_TRUE(a.feasible) << name;
    EXPECT_EQ(a.status, PlanStatus::kBudgetExhausted) << name;
    // Cost consistency under the optimizer's own metric.
    LogDouble want = (name == "cout") ? CoutSequenceCost(inst, a.sequence)
                                      : QonSequenceCost(inst, a.sequence);
    EXPECT_EQ(want.Log2(), a.cost.Log2()) << name;

    // Deterministic: an identical repeat run is bit-identical.
    Rng rng_b(11);
    OptimizerResult b = OptimizerRegistry::Qon().Run(name, inst, options, &rng_b);
    EXPECT_EQ(a.cost.Log2(), b.cost.Log2()) << name;
    EXPECT_EQ(a.sequence, b.sequence) << name;
    EXPECT_EQ(a.evaluations, b.evaluations) << name;
    EXPECT_EQ(a.status, b.status) << name;

    // Thread counts cannot leak into the capped path.
    for (int threads : {2, 4}) {
      ThreadPool pool(threads);
      OptimizerOptions pooled = options;
      pooled.pool = &pool;
      Rng rng_c(11);
      OptimizerResult c =
          OptimizerRegistry::Qon().Run(name, inst, pooled, &rng_c);
      EXPECT_EQ(a.cost.Log2(), c.cost.Log2())
          << name << " threads=" << threads;
      EXPECT_EQ(a.sequence, c.sequence) << name << " threads=" << threads;
      EXPECT_EQ(a.evaluations, c.evaluations)
          << name << " threads=" << threads;
      EXPECT_EQ(a.status, c.status) << name << " threads=" << threads;
    }
  }
}

TEST(AnytimeBudget, EveryQohOptimizerReturnsBestSoFarUnderTightCap) {
  Rng workload_rng(604);
  QohInstance inst = RandomQohWorkload(6, &workload_rng, 0.6);

  QohOptimizerOptions options;
  options.samples = 60;
  options.restarts = 3;
  options.sa.iterations = 200;
  options.sa.restarts = 2;
  options.budget.max_evaluations = 5;

  for (const std::string& name : QohOptimizerRegistry::Get().Names()) {
    Rng rng_a(13);
    QohOptimizerResult a =
        QohOptimizerRegistry::Get().Run(name, inst, options, &rng_a);
    EXPECT_EQ(a.status, PlanStatus::kBudgetExhausted) << name;
    if (a.feasible) {
      // Valid plan: re-deriving the optimal decomposition of the
      // returned sequence reproduces the claimed cost bits.
      QohPlan plan = OptimalDecomposition(inst, a.sequence);
      ASSERT_TRUE(plan.feasible) << name;
      EXPECT_EQ(plan.cost.Log2(), a.cost.Log2()) << name;
    }
    Rng rng_b(13);
    QohOptimizerResult b =
        QohOptimizerRegistry::Get().Run(name, inst, options, &rng_b);
    EXPECT_EQ(a.feasible, b.feasible) << name;
    EXPECT_EQ(a.cost.Log2(), b.cost.Log2()) << name;
    EXPECT_EQ(a.sequence, b.sequence) << name;
    EXPECT_EQ(a.evaluations, b.evaluations) << name;
  }
}

// --- Incremental cost evaluators are invisible (qo/cost_eval.h) ---

// The zero-allocation evaluators are a pure performance substitution:
// every registry optimizer must produce the exact (feasible, cost,
// sequence, evaluations, status) tuple it produced on the naive cost
// path. ScopedNaiveCostEvaluation flips the rewired optimizers back onto
// QonSequenceCost / OptimalDecomposition, so both arms run the *same*
// optimizer code with the same seeded RNG stream — any divergence is an
// evaluator bug, and the comparison is on raw cost bits, not an epsilon.
TEST(CostEvaluatorInvariance, QonRegistryTripleUnchangedByFastPath) {
  Rng gen(601);
  std::vector<QonInstance> instances;
  instances.push_back(RandomQonWorkload(7, &gen));
  // A tree-shaped instance so kbz runs for real instead of returning its
  // graceful non-tree infeasible result.
  {
    Graph chain = Chain(7);
    std::vector<LogDouble> sizes;
    for (int i = 0; i < 7; ++i) {
      sizes.push_back(LogDouble::FromLinear(
          static_cast<double>(gen.UniformInt(2, 5000))));
    }
    QonInstance tree(chain, std::move(sizes));
    for (const auto& [u, v] : chain.Edges()) {
      tree.SetSelectivity(u, v,
                          LogDouble::FromLinear(gen.UniformReal(0.01, 1.0)));
    }
    instances.push_back(std::move(tree));
  }
  const OptimizerRegistry& registry = OptimizerRegistry::Qon();
  for (size_t which = 0; which < instances.size(); ++which) {
    const QonInstance& inst = instances[which];
    for (uint64_t cap : {uint64_t{0}, uint64_t{5}}) {
      OptimizerOptions options;
      options.budget.max_evaluations = cap;
      for (const std::string& name : registry.Names()) {
        Rng rng_fast(900 + which);
        OptimizerResult fast = registry.Run(name, inst, options, &rng_fast);
        ScopedNaiveCostEvaluation naive_scope;
        Rng rng_naive(900 + which);
        OptimizerResult naive = registry.Run(name, inst, options, &rng_naive);
        SCOPED_TRACE(name + " cap=" + std::to_string(cap));
        EXPECT_EQ(fast.feasible, naive.feasible);
        EXPECT_EQ(fast.cost.Log2(), naive.cost.Log2());
        EXPECT_EQ(fast.sequence, naive.sequence);
        EXPECT_EQ(fast.evaluations, naive.evaluations);
        EXPECT_EQ(fast.status, naive.status);
      }
    }
  }
}

TEST(CostEvaluatorInvariance, QohRegistryTripleUnchangedByFastPath) {
  Rng gen(602);
  QohInstance inst = RandomQohWorkload(6, &gen, 0.4);
  const QohOptimizerRegistry& registry = QohOptimizerRegistry::Get();
  for (uint64_t cap : {uint64_t{0}, uint64_t{5}}) {
    QohOptimizerOptions options;
    options.budget.max_evaluations = cap;
    for (const std::string& name : registry.Names()) {
      Rng rng_fast(903);
      QohOptimizerResult fast = registry.Run(name, inst, options, &rng_fast);
      ScopedNaiveCostEvaluation naive_scope;
      Rng rng_naive(903);
      QohOptimizerResult naive = registry.Run(name, inst, options, &rng_naive);
      SCOPED_TRACE(name + " cap=" + std::to_string(cap));
      EXPECT_EQ(fast.feasible, naive.feasible);
      EXPECT_EQ(fast.cost.Log2(), naive.cost.Log2());
      EXPECT_EQ(fast.sequence, naive.sequence);
      EXPECT_EQ(fast.evaluations, naive.evaluations);
      EXPECT_EQ(fast.status, naive.status);
      EXPECT_EQ(fast.decomposition.starts, naive.decomposition.starts);
    }
  }
}

// Same invariance through the batch service, across thread counts: the
// evaluators are created per optimizer invocation, so worker threads
// never share incremental state.
TEST(CostEvaluatorInvariance, ServiceBatchUnchangedByFastPathAcrossThreads) {
  Rng gen(603);
  std::vector<QonInstance> qon_batch;
  std::vector<QohInstance> qoh_batch;
  for (int i = 0; i < 6; ++i) {
    qon_batch.push_back(RandomQonWorkload(4 + i, &gen));
    qoh_batch.push_back(RandomQohWorkload(4 + i % 4, &gen, 0.5));
  }
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    BatchOptions options;
    options.optimizer = "sa";
    options.seed = 41;
    options.pool = &pool;

    std::vector<QonBatchItem> fast = OptimizeQonBatch(qon_batch, options);
    std::vector<QohBatchItem> fast_h = OptimizeQohBatch(qoh_batch, options);
    ScopedNaiveCostEvaluation naive_scope;
    std::vector<QonBatchItem> naive = OptimizeQonBatch(qon_batch, options);
    std::vector<QohBatchItem> naive_h = OptimizeQohBatch(qoh_batch, options);

    ASSERT_EQ(fast.size(), naive.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      SCOPED_TRACE("qon item " + std::to_string(i) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(fast[i].result.feasible, naive[i].result.feasible);
      EXPECT_EQ(fast[i].result.cost.Log2(), naive[i].result.cost.Log2());
      EXPECT_EQ(fast[i].result.sequence, naive[i].result.sequence);
      EXPECT_EQ(fast[i].result.evaluations, naive[i].result.evaluations);
    }
    ASSERT_EQ(fast_h.size(), naive_h.size());
    for (size_t i = 0; i < fast_h.size(); ++i) {
      SCOPED_TRACE("qoh item " + std::to_string(i) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(fast_h[i].result.feasible, naive_h[i].result.feasible);
      EXPECT_EQ(fast_h[i].result.cost.Log2(), naive_h[i].result.cost.Log2());
      EXPECT_EQ(fast_h[i].result.sequence, naive_h[i].result.sequence);
      EXPECT_EQ(fast_h[i].result.evaluations, naive_h[i].result.evaluations);
    }
  }
}

}  // namespace
}  // namespace aqo
