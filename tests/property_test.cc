// Parameterized property sweeps (TEST_P) over the invariants the paper's
// lemmas rely on: the hash-join cost axioms for every eta, homogeneity of
// the QO_N cost model, gap soundness across (alpha, d) parameterizations,
// and seed sweeps of the reduction chains.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qon.h"
#include "reductions/sat_to_clique.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/random.h"

namespace aqo {
namespace {

// --- QO_H cost axioms (paper Section 2.2, properties 1-4 of g) ---

class QohAxiomSweep : public ::testing::TestWithParam<double> {};

TEST_P(QohAxiomSweep, HashJoinCostSatisfiesTheFourAxioms) {
  double eta = GetParam();
  Graph g = Chain(2);
  double inner = 4096.0;
  std::vector<LogDouble> sizes = {LogDouble::FromLinear(512.0),
                                  LogDouble::FromLinear(inner)};
  double hjmin = std::ceil(std::pow(inner, eta));

  auto cost_at_memory = [&](double memory) {
    QohInstance inst(g, sizes, memory, eta);
    inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
    PipelineCostResult r = OptimalPipelineCost(inst, {0, 1}, 1, 1);
    EXPECT_TRUE(r.feasible);
    return r.cost.ToLinear();
  };

  // Axiom 1: linear decreasing on [hjmin, b]. Check monotone decreasing
  // and exact midpoint linearity.
  double lo = cost_at_memory(hjmin);
  double mid = cost_at_memory((hjmin + inner) / 2.0);
  double hi = cost_at_memory(inner);
  EXPECT_GT(lo, mid);
  EXPECT_GT(mid, hi);
  EXPECT_NEAR(mid, (lo + hi) / 2.0, 1e-6 * lo);

  // Axiom 2: g = 0 for m >= b: cost flat beyond the inner size.
  EXPECT_NEAR(cost_at_memory(inner * 4.0), hi, 1e-9);

  // Axiom 4: h(hjmin) = Theta(b_R + b_S): full probe re-read plus build
  // plus materialization bookkeeping.
  double n_out = 512.0 * inner * 0.5;
  EXPECT_NEAR(lo, 512.0 + (512.0 + inner) * 1.0 + inner + n_out, 1e-6 * lo);

  // Feasibility boundary: below hjmin the join cannot run.
  QohInstance starved(g, sizes, hjmin - 1.0, eta);
  starved.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  EXPECT_FALSE(OptimalPipelineCost(starved, {0, 1}, 1, 1).feasible);
}

INSTANTIATE_TEST_SUITE_P(EtaSweep, QohAxiomSweep,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75));

// --- QO_N cost model homogeneity ---

class QonHomogeneitySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(QonHomogeneitySweep, ScalingAllSizesScalesPrefixes) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  QonInstance inst = RandomQonWorkload(n, &rng);
  LogDouble factor = LogDouble::FromLinear(7.0);

  QonInstance scaled(inst.graph(), [&] {
    std::vector<LogDouble> s;
    for (int i = 0; i < n; ++i) s.push_back(inst.size(i) * factor);
    return s;
  }());
  for (const auto& [u, v] : inst.graph().Edges()) {
    scaled.SetSelectivity(u, v, inst.selectivity(u, v));
  }

  JoinSequence seq = IdentitySequence(n);
  rng.Shuffle(&seq);
  std::vector<LogDouble> base = PrefixSizes(inst, seq);
  std::vector<LogDouble> big = PrefixSizes(scaled, seq);
  for (size_t k = 0; k < base.size(); ++k) {
    // N scales by factor^k (one factor per member relation).
    EXPECT_TRUE((base[k] * factor.Pow(static_cast<double>(k)))
                    .ApproxEquals(big[k], 1e-9))
        << "prefix length " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, QonHomogeneitySweep,
    ::testing::Combine(::testing::Values(4, 7, 10),
                       ::testing::Values(uint64_t{1}, uint64_t{99},
                                         uint64_t{2024})));

// --- f_N gap soundness across parameterizations ---

class GapSoundnessSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GapSoundnessSweep, CertifiedFloorNeverExceedsTrueOptimum) {
  auto [log2_alpha, d] = GetParam();
  Rng rng(static_cast<uint64_t>(log2_alpha * 100 + d * 10));
  for (int trial = 0; trial < 8; ++trial) {
    int n = static_cast<int>(rng.UniformInt(6, 11));
    Graph g = Gnp(n, rng.UniformReal(0.3, 0.9), &rng);
    QonGapParams params{.c = 0.8, .d = d, .log2_alpha = log2_alpha};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    int omega = static_cast<int>(MaxClique(g).clique.size());
    OptimizerResult opt = DpQonOptimizer(gap.instance);
    ASSERT_TRUE(opt.feasible);
    EXPECT_GE(opt.cost.Log2() + 1e-6,
              gap.CertifiedLowerBound(omega).Log2())
        << "alpha=2^" << log2_alpha << " d=" << d << " n=" << n;
  }
}

TEST_P(GapSoundnessSweep, WitnessRespectsKOnDenseYesInstances) {
  auto [log2_alpha, d] = GetParam();
  Rng rng(static_cast<uint64_t>(log2_alpha * 7 + d * 31));
  int n = 90;
  int clique = 2 * n / 3;
  std::vector<int> planted;
  Graph g = CliqueClassGraph(n, 13, 1.0, clique, &rng, &planted);
  QonGapParams params{.c = 2.0 / 3.0, .d = d, .log2_alpha = log2_alpha};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  JoinSequence witness = CliqueFirstWitness(g, planted);
  // Lemma 6 regime requires n >= 30/d; these parameters satisfy it.
  ASSERT_GE(n, static_cast<int>(30.0 / d));
  EXPECT_LE(QonSequenceCost(gap.instance, witness).Log2(),
            gap.KBound().Log2() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaDSweep, GapSoundnessSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 12.0),
                       ::testing::Values(1.0 / 3.0, 0.4, 0.5)));

// --- Lemma 3/4 agreement across formula shapes ---

struct FormulaShape {
  int vars;
  int clauses;
};

class CliqueReductionSweep : public ::testing::TestWithParam<FormulaShape> {};

TEST_P(CliqueReductionSweep, OmegaTracksMinUnsat) {
  FormulaShape shape = GetParam();
  Rng rng(static_cast<uint64_t>(shape.vars * 100 + shape.clauses));
  for (int trial = 0; trial < 5; ++trial) {
    CnfFormula f = RandomThreeSat(shape.vars, shape.clauses, &rng);
    int u_star = f.NumClauses() - MaxSatisfiableClauses(f);
    SatToCliqueResult r = ReduceSatToClique(f);
    EXPECT_EQ(static_cast<int>(MaxClique(r.graph).clique.size()),
              r.CliqueSizeForUnsat(u_star));
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, CliqueReductionSweep,
                         ::testing::Values(FormulaShape{3, 2},
                                           FormulaShape{3, 5},
                                           FormulaShape{4, 4},
                                           FormulaShape{5, 3}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.vars) + "m" +
                                  std::to_string(info.param.clauses);
                         });

}  // namespace
}  // namespace aqo
