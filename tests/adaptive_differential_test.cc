// The adaptive entry's differential guarantee, end to end through the
// batch service (qo/service.h):
//
//   * validity — every returned plan is feasible and costs (bitwise, in
//     log2) no more than the fallback entry's plan on the same instance;
//   * determinism — same seed + same initial feedback-store state gives
//     bit-identical results for threads {1, 2, 4}, cache attached or
//     not, cold store or a store recovered from disk;
//   * learning — batch N+1 sees what batch N committed, and the
//     guarantee holds from ANY committed state;
//   * canonical decisions — relabeled duplicates inside a batch land in
//     the same 1-WL class and cost bitwise the same.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qo/adaptive.h"
#include "qo/fingerprint.h"
#include "qo/plan_cache.h"
#include "qo/qon.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

constexpr uint64_t kSeed = 11;
const int kThreadCounts[] = {1, 2, 4};

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return perm;
}

// Three bases, each with two relabeled duplicates: 9 instances.
std::vector<QonInstance> Batch(uint64_t seed) {
  Rng rng(seed);
  std::vector<QonInstance> bases;
  bases.push_back(RandomQonWorkload(7, &rng));
  bases.push_back(RandomQonWorkload(6, &rng));
  bases.push_back(RandomQonWorkload(7, &rng));
  std::vector<QonInstance> batch;
  for (const QonInstance& base : bases) {
    batch.push_back(base);
    for (int d = 0; d < 2; ++d) {
      batch.push_back(PermuteQonInstance(
          base, RandomPermutation(base.NumRelations(), &rng)));
    }
  }
  return batch;
}

BatchOptions AdaptiveOptions(FeedbackStore* store) {
  BatchOptions options;
  options.optimizer = "adaptive";
  options.seed = kSeed;
  options.qon.adaptive.store = store;
  return options;
}

void ExpectBitIdentical(const std::string& label,
                        const std::vector<QonBatchItem>& a,
                        const std::vector<QonBatchItem>& b) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.feasible, b[i].result.feasible)
        << label << " item " << i;
    EXPECT_EQ(a[i].result.cost.Log2(), b[i].result.cost.Log2())
        << label << " item " << i;
    EXPECT_EQ(a[i].result.sequence, b[i].result.sequence)
        << label << " item " << i;
    EXPECT_EQ(a[i].result.evaluations, b[i].result.evaluations)
        << label << " item " << i;
  }
}

TEST(AdaptiveDifferential, ValidAndNeverWorseThanFallback) {
  std::vector<QonInstance> batch = Batch(71);

  FeedbackStore store;
  std::vector<QonBatchItem> adaptive =
      OptimizeQonBatch(batch, AdaptiveOptions(&store));

  BatchOptions fallback_options;
  fallback_options.optimizer = "greedy";
  fallback_options.seed = kSeed;
  std::vector<QonBatchItem> fallback =
      OptimizeQonBatch(batch, fallback_options);

  ASSERT_EQ(adaptive.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(adaptive[i].result.feasible) << "item " << i;
    // The plan is real: it costs on the ORIGINAL labels exactly what the
    // result claims.
    EXPECT_EQ(QonSequenceCost(batch[i], adaptive[i].result.sequence).Log2(),
              adaptive[i].result.cost.Log2())
        << "item " << i;
    ASSERT_TRUE(fallback[i].result.feasible) << "item " << i;
    EXPECT_LE(adaptive[i].result.cost.Log2(), fallback[i].result.cost.Log2())
        << "item " << i;
  }

  // Relabeled duplicates (items 3k, 3k+1, 3k+2 share a base) got the same
  // canonical decision: identical cost bits and evaluation counts.
  for (size_t base = 0; base < batch.size(); base += 3) {
    for (size_t d = 1; d < 3; ++d) {
      EXPECT_EQ(adaptive[base].result.cost.Log2(),
                adaptive[base + d].result.cost.Log2())
          << "base " << base << " dup " << d;
      EXPECT_EQ(adaptive[base].result.evaluations,
                adaptive[base + d].result.evaluations)
          << "base " << base << " dup " << d;
    }
  }
}

TEST(AdaptiveDifferential, BitIdenticalAcrossThreadsAndCache) {
  std::vector<QonInstance> batch = Batch(72);

  auto run = [&batch](int threads, PlanCache* cache) {
    FeedbackStore store;
    BatchOptions options = AdaptiveOptions(&store);
    options.cache = cache;
    if (threads > 1) {
      ThreadPool pool(threads);
      options.pool = &pool;
      return OptimizeQonBatch(batch, options);
    }
    return OptimizeQonBatch(batch, options);
  };

  std::vector<QonBatchItem> reference = run(1, nullptr);
  for (int threads : kThreadCounts) {
    std::string label = "threads=" + std::to_string(threads);
    ExpectBitIdentical(label + " nocache", reference, run(threads, nullptr));
    PlanCache cache;
    ExpectBitIdentical(label + " cache", reference, run(threads, &cache));
    // Stateful: the cache must stay empty (gated off for adaptive).
    EXPECT_EQ(cache.GetStats().entries, 0u) << label;
  }
}

TEST(AdaptiveDifferential, WarmStoreIsDeterministicAndStillGuarded) {
  std::vector<QonInstance> warmup = Batch(73);
  std::vector<QonInstance> batch = Batch(74);
  std::string path =
      testing::TempDir() + "/aqo_adaptive_differential_store.bin";
  std::remove(path.c_str());

  // Warm a store through one batch (the service epilogue commits), then
  // persist it.
  FeedbackStore warmed;
  OptimizeQonBatch(warmup, AdaptiveOptions(&warmed));
  ASSERT_GT(warmed.CommittedSize(), 0u);
  std::string error;
  ASSERT_TRUE(warmed.SaveTo(path, &error)) << error;

  // Two stores recovered from the same file are the same initial state:
  // same-seed runs from them must be bit-identical, across threads.
  auto run_from_disk = [&](int threads) {
    FeedbackStore store;
    FeedbackLoadStats stats = store.LoadFrom(path);
    EXPECT_TRUE(stats.existed);
    EXPECT_TRUE(stats.damage.empty()) << stats.damage;
    BatchOptions options = AdaptiveOptions(&store);
    if (threads > 1) {
      ThreadPool pool(threads);
      options.pool = &pool;
      return OptimizeQonBatch(batch, options);
    }
    return OptimizeQonBatch(batch, options);
  };
  std::vector<QonBatchItem> reference = run_from_disk(1);
  for (int threads : kThreadCounts) {
    ExpectBitIdentical("warm threads=" + std::to_string(threads), reference,
                       run_from_disk(threads));
  }

  // And the fallback guarantee holds from the warm state too.
  BatchOptions fallback_options;
  fallback_options.optimizer = "greedy";
  fallback_options.seed = kSeed;
  std::vector<QonBatchItem> fallback =
      OptimizeQonBatch(batch, fallback_options);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(reference[i].result.feasible);
    EXPECT_LE(reference[i].result.cost.Log2(),
              fallback[i].result.cost.Log2())
        << "item " << i;
  }
  std::remove(path.c_str());
}

TEST(AdaptiveDifferential, QohFamilyHoldsTheSameContract) {
  Rng rng(75);
  std::vector<QohInstance> batch;
  for (int b = 0; b < 3; ++b) {
    QohInstance base = RandomQohWorkload(6, &rng, 0.5);
    batch.push_back(base);
    batch.push_back(PermuteQohInstance(base, RandomPermutation(6, &rng)));
  }

  auto run = [&batch](int threads) {
    FeedbackStore store;
    BatchOptions options;
    options.optimizer = "adaptive";
    options.seed = kSeed;
    options.qoh.adaptive.store = &store;
    if (threads > 1) {
      ThreadPool pool(threads);
      options.pool = &pool;
      return OptimizeQohBatch(batch, options);
    }
    return OptimizeQohBatch(batch, options);
  };

  std::vector<QohBatchItem> reference = run(1);
  for (int threads : kThreadCounts) {
    std::string label = "qoh threads=" + std::to_string(threads);
    std::vector<QohBatchItem> other = run(threads);
    ASSERT_EQ(reference.size(), other.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].result.feasible, other[i].result.feasible)
          << label << " item " << i;
      if (!reference[i].result.feasible) continue;
      EXPECT_EQ(reference[i].result.cost.Log2(), other[i].result.cost.Log2())
          << label << " item " << i;
      EXPECT_EQ(reference[i].result.sequence, other[i].result.sequence)
          << label << " item " << i;
      EXPECT_EQ(reference[i].result.decomposition.starts,
                other[i].result.decomposition.starts)
          << label << " item " << i;
    }
  }

  BatchOptions fallback_options;
  fallback_options.optimizer = "greedy";
  fallback_options.seed = kSeed;
  std::vector<QohBatchItem> fallback =
      OptimizeQohBatch(batch, fallback_options);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!fallback[i].result.feasible) continue;
    ASSERT_TRUE(reference[i].result.feasible) << "item " << i;
    EXPECT_LE(reference[i].result.cost.Log2(),
              fallback[i].result.cost.Log2())
        << "item " << i;
  }
}

}  // namespace
}  // namespace aqo
