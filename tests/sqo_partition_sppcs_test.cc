// Tests for PARTITION, SPPCS, and the PARTITION -> SPPCS reduction
// (Appendix A.4/A.5; reconstructed construction, see sppcs.h).

#include <gtest/gtest.h>

#include "sqo/partition.h"
#include "sqo/sppcs.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(Partition, DpSolvesKnownInstances) {
  PartitionInstance yes{{3, 1, 1, 2, 2, 1}};  // total 10, half 5
  auto subset = SolvePartitionDp(yes);
  ASSERT_TRUE(subset.has_value());
  int64_t sum = 0;
  for (int i : *subset) sum += yes.values[static_cast<size_t>(i)];
  EXPECT_EQ(sum, 5);

  PartitionInstance no{{1, 1, 4}};  // total 6, half 3: impossible
  EXPECT_FALSE(SolvePartitionDp(no).has_value());
}

TEST(Partition, DpMatchesBruteForce) {
  Rng rng(121);
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 12));
    PartitionInstance inst =
        RandomPartitionInstance(n, 30, rng.Bernoulli(0.5), &rng);
    EXPECT_EQ(SolvePartitionDp(inst).has_value(),
              SolvePartitionBrute(inst).has_value())
        << "trial=" << trial;
  }
}

TEST(Partition, ForcedYesInstancesAreYes) {
  Rng rng(122);
  for (int trial = 0; trial < 50; ++trial) {
    PartitionInstance inst = RandomPartitionInstance(8, 100, true, &rng);
    EXPECT_TRUE(SolvePartitionDp(inst).has_value());
  }
}

TEST(Sppcs, ValueComputation) {
  SppcsInstance inst;
  inst.pairs = {{BigInt(3), BigInt(10)}, {BigInt(4), BigInt(20)}};
  inst.l_bound = 100;
  EXPECT_EQ(SppcsValue(inst, {true, true}), BigInt(12));
  EXPECT_EQ(SppcsValue(inst, {true, false}), BigInt(23));
  EXPECT_EQ(SppcsValue(inst, {false, false}), BigInt(31));  // empty product 1
}

TEST(Sppcs, BruteForceFindsMinimum) {
  SppcsInstance inst;
  inst.pairs = {{BigInt(3), BigInt(10)},
                {BigInt(4), BigInt(20)},
                {BigInt(100), BigInt(1)}};
  inst.l_bound = 12;
  SppcsSolution sol = SolveSppcsBrute(inst);
  EXPECT_EQ(sol.best_value, BigInt(13));  // {1,2} in A: 12 + 1
  EXPECT_FALSE(sol.yes);
  inst.l_bound = 13;
  EXPECT_TRUE(SolveSppcsBrute(inst).yes);
}

TEST(PartitionToSppcs, ObjectiveEqualsConvexF) {
  // Objective of any subset equals F(s_A) = 2^{s_A} + S(2K - s_A).
  Rng rng(123);
  PartitionInstance inst = RandomPartitionInstance(6, 10, false, &rng);
  SppcsInstance sppcs = ReducePartitionToSppcs(inst);
  int64_t k = inst.Half();
  BigInt s = BigInt(3) * (BigInt(1) << static_cast<int>(k - 2));
  for (uint32_t mask = 0; mask < 64; ++mask) {
    std::vector<bool> in_a(6);
    int64_t s_a = 0;
    for (int i = 0; i < 6; ++i) {
      in_a[static_cast<size_t>(i)] = (mask >> i) & 1;
      if (in_a[static_cast<size_t>(i)])
        s_a += inst.values[static_cast<size_t>(i)];
    }
    BigInt expected =
        (BigInt(1) << static_cast<int>(s_a)) + s * BigInt(2 * k - s_a);
    EXPECT_EQ(SppcsValue(sppcs, in_a), expected);
  }
}

TEST(PartitionToSppcs, ManyOnePropertyExhaustive) {
  // The load-bearing check: PARTITION yes <=> SPPCS yes, across hundreds
  // of random instances, decided by independent brute-force solvers.
  Rng rng(124);
  for (int trial = 0; trial < 300; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 9));
    PartitionInstance inst =
        RandomPartitionInstance(n, 12, rng.Bernoulli(0.5), &rng);
    if (inst.Total() < 4) continue;  // reduction requires K >= 2
    SppcsInstance sppcs = ReducePartitionToSppcs(inst);
    bool partition_yes = SolvePartitionBrute(inst).has_value();
    bool sppcs_yes = SolveSppcsBrute(sppcs).yes;
    EXPECT_EQ(partition_yes, sppcs_yes)
        << "trial=" << trial << " n=" << n << " total=" << inst.Total();
  }
}

TEST(PartitionToSppcs, WitnessMapsThrough) {
  Rng rng(125);
  for (int trial = 0; trial < 30; ++trial) {
    PartitionInstance inst = RandomPartitionInstance(7, 15, true, &rng);
    if (inst.Total() < 4) continue;
    auto subset = SolvePartitionDp(inst);
    ASSERT_TRUE(subset.has_value());
    SppcsInstance sppcs = ReducePartitionToSppcs(inst);
    std::vector<bool> witness = SppcsWitnessFromPartition(inst, *subset);
    EXPECT_LE(SppcsValue(sppcs, witness), sppcs.l_bound);
  }
}

TEST(PartitionToSppcs, ZeroValuesAreHarmless) {
  PartitionInstance inst{{0, 2, 2, 0}};
  SppcsInstance sppcs = ReducePartitionToSppcs(inst);
  EXPECT_TRUE(SolveSppcsBrute(sppcs).yes);
  // p = 2^0 = 1, c = 0 for the zero items.
  EXPECT_EQ(sppcs.pairs[0].p, BigInt(1));
  EXPECT_EQ(sppcs.pairs[0].c, BigInt(0));
}

}  // namespace
}  // namespace aqo
