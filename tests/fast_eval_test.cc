// Tests for the certified fast evaluation tier (qo/fast_eval.h):
//
//  - SIMD/scalar kernel parity: the vectorized row kernels are
//    bit-identical to their scalar reference versions (only IEEE-exact
//    add/min operations are vectorized).
//  - Certified error bound: every fast price — base cost, the batched
//    adjacent pass, arbitrary PriceSwap, SequenceCostLog2 — is within
//    EpsLog2() of the exact evaluator across seeded random instances.
//  - Exact feasibility (QO_H): the fast tier's feasibility verdict has no
//    error bar at all.
//  - Tier identity: every local-search optimizer returns a bit-identical
//    (feasible, cost, sequence, status) under eval_tier=fast, including
//    on adversarial near-tie instances where every adjacent swap is
//    cost-neutral.
//  - Counter attribution: fast probes are charged to the qo.fast_eval.*
//    counter family.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "qo/genetic.h"
#include "qo/qoh.h"
#include "qo/qoh_optimizers.h"
#include "qo/qon.h"
#include "qo/registry.h"
#include "qo/workloads.h"
#include "util/random.h"

namespace aqo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- kernel parity ------------------------------------------------------

std::vector<double> RandomRow(int n, Rng* rng, bool with_inf) {
  std::vector<double> row(static_cast<size_t>(n));
  for (double& x : row) {
    x = rng->UniformReal(-1000.0, 1000.0);
    if (with_inf && rng->UniformInt(0, 9) == 0) {
      x = rng->UniformInt(0, 1) == 0 ? kInf : -kInf;
    }
  }
  return row;
}

TEST(FastEvalKernels, VectorizedRowKernelsMatchScalarBitForBit) {
  Rng rng(17);
  for (int n : {1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 100, 257}) {
    std::vector<double> a = RandomRow(n, &rng, /*with_inf=*/true);
    std::vector<double> b = RandomRow(n, &rng, /*with_inf=*/true);
    size_t bytes = static_cast<size_t>(n) * sizeof(double);

    std::vector<double> out(static_cast<size_t>(n));
    std::vector<double> ref(static_cast<size_t>(n));
    fast_eval_internal::RowMin(out.data(), a.data(), b.data(), n);
    fast_eval_internal::RowMinScalar(ref.data(), a.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), bytes)) << "RowMin n=" << n;

    fast_eval_internal::RowAdd(out.data(), a.data(), b.data(), n);
    fast_eval_internal::RowAddScalar(ref.data(), a.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), bytes)) << "RowAdd n=" << n;

    out = a;
    ref = a;
    fast_eval_internal::RowMinInPlace(out.data(), b.data(), n);
    fast_eval_internal::RowMinInPlaceScalar(ref.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), bytes))
        << "RowMinInPlace n=" << n;

    out = a;
    ref = a;
    fast_eval_internal::RowAddInPlace(out.data(), b.data(), n);
    fast_eval_internal::RowAddInPlaceScalar(ref.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), bytes))
        << "RowAddInPlace n=" << n;
  }
}

TEST(FastEvalKernels, MinTiesResolveIdenticallyAcrossPaths) {
  // Equal values in both rows: VMINPD returns its second operand on
  // equality, and the scalar kernel is written to match. With only
  // bit-identical equal inputs here, any resolution is byte-equal — this
  // guards the +0.0 / -0.0 case where it is not.
  std::vector<double> a = {0.0, -0.0, 1.0, -0.0, 0.0, 5.0, -0.0, 0.0, 3.0};
  std::vector<double> b = {-0.0, 0.0, 1.0, -0.0, 0.0, 4.0, 0.0, -0.0, 3.0};
  int n = static_cast<int>(a.size());
  std::vector<double> out(a.size()), ref(a.size());
  fast_eval_internal::RowMin(out.data(), a.data(), b.data(), n);
  fast_eval_internal::RowMinScalar(ref.data(), a.data(), b.data(), n);
  EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), a.size() * sizeof(double)));
}

// --- QO_N certified bound ----------------------------------------------

TEST(QonNeighborhoodEvaluator, AllPricesWithinCertifiedBound) {
  for (uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(seed);
    int n = 2 + static_cast<int>(rng.UniformInt(0, 18));
    QonInstance inst = RandomQonWorkload(n, &rng);
    QonCostEvaluator exact(inst);
    QonNeighborhoodEvaluator fast(inst);
    double eps = fast.EpsLog2();
    ASSERT_GT(eps, 0.0);

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    LogDouble base = exact.Cost(seq);
    fast.Load(seq);
    EXPECT_NEAR(fast.BaseCostLog2(), base.Log2(), eps)
        << "seed=" << seed << " n=" << n;
    EXPECT_NEAR(fast.SequenceCostLog2(seq), base.Log2(), eps);

    const double* adjacent = fast.PriceAdjacentAll();
    for (int i = 0; i + 1 < n; ++i) {
      LogDouble probe = exact.CostAfterSwap(i, i + 1);
      exact.CostAfterSwap(i, i + 1);  // restore
      EXPECT_NEAR(adjacent[i], probe.Log2(), eps)
          << "seed=" << seed << " n=" << n << " i=" << i;
      EXPECT_NEAR(fast.PriceSwap(i, i + 1), probe.Log2(), eps);
    }
    for (int trial = 0; trial < 8; ++trial) {
      int i = static_cast<int>(rng.UniformInt(0, n - 1));
      int j = static_cast<int>(rng.UniformInt(0, n - 1));
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      JoinSequence swapped = seq;
      std::swap(swapped[static_cast<size_t>(i)],
                swapped[static_cast<size_t>(j)]);
      LogDouble want = exact.Cost(swapped);
      exact.Cost(seq);  // restore the diff base
      EXPECT_NEAR(fast.PriceSwap(i, j), want.Log2(), eps)
          << "seed=" << seed << " n=" << n << " i=" << i << " j=" << j;
    }
  }
}

// --- QO_H certified bound + exact feasibility ---------------------------

TEST(QohNeighborhoodEvaluator, PricesWithinBoundAndFeasibilityExact) {
  for (uint64_t seed = 0; seed < 80; ++seed) {
    Rng rng(seed);
    int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
    QohInstance inst = RandomQohWorkload(n, &rng);
    QohCostEvaluator exact(inst);
    QohNeighborhoodEvaluator fast(inst);
    double eps = fast.EpsLog2();

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    const QohPlan& base = exact.Evaluate(seq);
    fast.Load(seq);
    ASSERT_EQ(fast.BaseFeasible(), base.feasible) << "seed=" << seed;
    if (base.feasible) {
      EXPECT_NEAR(fast.BaseCostLog2(), base.cost.Log2(), eps);
    }
    for (int i = 0; i + 1 < n; ++i) {
      JoinSequence swapped = seq;
      std::swap(swapped[static_cast<size_t>(i)],
                swapped[static_cast<size_t>(i + 1)]);
      const QohPlan& probe = exact.Evaluate(swapped);
      bool want_feasible = probe.feasible;
      double want = probe.feasible ? probe.cost.Log2() : 0.0;
      exact.Evaluate(seq);  // restore
      bool feasible = false;
      double got = fast.PriceSwap(i, i + 1, &feasible);
      ASSERT_EQ(feasible, want_feasible)
          << "seed=" << seed << " n=" << n << " i=" << i;
      if (want_feasible) {
        EXPECT_NEAR(got, want, eps) << "seed=" << seed << " n=" << n;
      }
    }
    for (int trial = 0; trial < 6; ++trial) {
      int i = static_cast<int>(rng.UniformInt(0, n - 1));
      int j = static_cast<int>(rng.UniformInt(0, n - 1));
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      JoinSequence swapped = seq;
      std::swap(swapped[static_cast<size_t>(i)],
                swapped[static_cast<size_t>(j)]);
      const QohPlan& probe = exact.Evaluate(swapped);
      bool want_feasible = probe.feasible;
      double want = probe.feasible ? probe.cost.Log2() : 0.0;
      exact.Evaluate(seq);
      bool feasible = false;
      double got = fast.PriceSwap(i, j, &feasible);
      ASSERT_EQ(feasible, want_feasible) << "seed=" << seed;
      if (want_feasible) EXPECT_NEAR(got, want, eps) << "seed=" << seed;
    }
  }
}

// --- tier identity ------------------------------------------------------

template <typename Result>
void ExpectSameResult(const Result& exact, const Result& fast,
                      const char* what) {
  ASSERT_EQ(exact.feasible, fast.feasible) << what;
  EXPECT_EQ(exact.sequence, fast.sequence) << what;
  EXPECT_EQ(exact.status, fast.status) << what;
  if (exact.feasible) {
    EXPECT_EQ(exact.cost.Log2(), fast.cost.Log2()) << what;
  }
}

TEST(EvalTierIdentity, QonLocalSearchBitIdenticalAcrossTiers) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (int n : {5, 9, 14}) {
      Rng gen(seed);
      QonInstance inst = RandomQonWorkload(n, &gen);
      for (const char* name : {"ii", "sa", "genetic"}) {
        OptimizerOptions exact_opts;
        exact_opts.restarts = 2;
        exact_opts.sa.restarts = 1;
        exact_opts.sa.iterations = 800;
        exact_opts.ga.population = 16;
        exact_opts.ga.generations = 10;
        OptimizerOptions fast_opts = exact_opts;
        fast_opts.eval_tier = EvalTier::kFast;
        Rng rng_exact(seed * 1000 + static_cast<uint64_t>(n));
        Rng rng_fast(seed * 1000 + static_cast<uint64_t>(n));
        OptimizerResult re =
            OptimizerRegistry::Qon().Run(name, inst, exact_opts, &rng_exact);
        OptimizerResult rf =
            OptimizerRegistry::Qon().Run(name, inst, fast_opts, &rng_fast);
        ExpectSameResult(re, rf, name);
      }
    }
  }
}

TEST(EvalTierIdentity, QohLocalSearchBitIdenticalAcrossTiers) {
  for (uint64_t seed : {3u, 11u}) {
    for (int n : {5, 8, 11}) {
      Rng gen(seed);
      QohInstance inst = RandomQohWorkload(n, &gen);
      for (const char* name : {"ii", "sa"}) {
        QohOptimizerOptions exact_opts;
        exact_opts.restarts = 2;
        exact_opts.sa.restarts = 1;
        exact_opts.sa.iterations = 500;
        QohOptimizerOptions fast_opts = exact_opts;
        fast_opts.eval_tier = EvalTier::kFast;
        Rng rng_exact(seed * 77 + static_cast<uint64_t>(n));
        Rng rng_fast(seed * 77 + static_cast<uint64_t>(n));
        QohOptimizerResult re = QohOptimizerRegistry::Get().Run(
            name, inst, exact_opts, &rng_exact);
        QohOptimizerResult rf = QohOptimizerRegistry::Get().Run(
            name, inst, fast_opts, &rng_fast);
        ExpectSameResult(re, rf, name);
        if (re.feasible) {
          EXPECT_EQ(re.decomposition.starts, rf.decomposition.starts) << name;
        }
      }
    }
  }
}

// Every relation identical, complete query graph, one shared selectivity:
// every swap of two relations is exactly cost-neutral, so the fast tier
// sees nothing but near-ties — the ambiguity band where a sloppy
// implementation would diverge from the exact accept/reject trajectory.
QonInstance NearTieQonInstance(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(1024.0));
  QonInstance inst(g, std::move(sizes));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      inst.SetSelectivity(u, v, LogDouble::FromLinear(0.125));
    }
  }
  return inst;
}

TEST(EvalTierIdentity, AdversarialNearTiesStayBitIdentical) {
  QonInstance inst = NearTieQonInstance(10);
  for (const char* name : {"ii", "sa", "genetic"}) {
    OptimizerOptions exact_opts;
    exact_opts.restarts = 2;
    exact_opts.sa.restarts = 1;
    exact_opts.sa.iterations = 600;
    exact_opts.ga.population = 12;
    exact_opts.ga.generations = 8;
    OptimizerOptions fast_opts = exact_opts;
    fast_opts.eval_tier = EvalTier::kFast;
    Rng rng_exact(99);
    Rng rng_fast(99);
    OptimizerResult re =
        OptimizerRegistry::Qon().Run(name, inst, exact_opts, &rng_exact);
    OptimizerResult rf =
        OptimizerRegistry::Qon().Run(name, inst, fast_opts, &rng_fast);
    ExpectSameResult(re, rf, name);
  }
}

// --- counter attribution ------------------------------------------------

TEST(FastEvalCounters, FastProbesChargeTheFastEvalFamily) {
  obs::Counter& neighborhoods =
      obs::Registry::Get().GetCounter("qo.fast_eval.neighborhoods");
  obs::Counter& candidates =
      obs::Registry::Get().GetCounter("qo.fast_eval.candidates");
  obs::Counter& repricings =
      obs::Registry::Get().GetCounter("qo.fast_eval.exact_repricings");

  Rng gen(5);
  QonInstance inst = RandomQonWorkload(10, &gen);

  OptimizerOptions exact_opts;
  exact_opts.restarts = 2;
  uint64_t n0 = neighborhoods.Value();
  uint64_t c0 = candidates.Value();
  Rng rng_exact(1);
  IterativeImprovementOptimizer(inst, &rng_exact, exact_opts);
  EXPECT_EQ(neighborhoods.Value(), n0) << "exact tier must not charge fast";
  EXPECT_EQ(candidates.Value(), c0);

  OptimizerOptions fast_opts = exact_opts;
  fast_opts.eval_tier = EvalTier::kFast;
  uint64_t r0 = repricings.Value();
  Rng rng_fast(1);
  OptimizerResult rf = IterativeImprovementOptimizer(inst, &rng_fast, fast_opts);
  EXPECT_GT(neighborhoods.Value(), n0);
  EXPECT_GT(candidates.Value(), c0);
  // Under the fast tier, result.evaluations counts exact re-pricings (plus
  // the per-restart start evaluations); the fast probes are accounted in
  // qo.fast_eval.candidates instead.
  EXPECT_EQ(repricings.Value() - r0 + 2, rf.evaluations);
}

}  // namespace
}  // namespace aqo
