#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(Graph, EdgesAndDegrees) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.MinDegree(), 1);
  EXPECT_EQ(g.MaxDegree(), 2);
  // Adding twice is a no-op.
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 3);
  g.RemoveEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(Graph, EdgesListSorted) {
  Graph g = Graph::FromEdges(4, {{2, 3}, {0, 1}, {1, 3}});
  std::vector<std::pair<int, int>> expected = {{0, 1}, {1, 3}, {2, 3}};
  EXPECT_EQ(g.Edges(), expected);
}

TEST(Graph, CompleteGraph) {
  Graph k5 = Graph::Complete(5);
  EXPECT_EQ(k5.NumEdges(), 10);
  EXPECT_EQ(k5.MinDegree(), 4);
  EXPECT_TRUE(k5.IsClique({0, 1, 2, 3, 4}));
}

TEST(Graph, Complement) {
  Graph g(4);
  g.AddEdge(0, 1);
  Graph c = g.Complement();
  EXPECT_EQ(c.NumEdges(), 5);
  EXPECT_FALSE(c.HasEdge(0, 1));
  EXPECT_TRUE(c.HasEdge(2, 3));
  EXPECT_EQ(c.Complement(), g);
}

TEST(Graph, InducedSubgraph) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  Graph sub = g.InducedSubgraph({0, 1, 2});
  EXPECT_EQ(sub.NumEdges(), 3);
  EXPECT_TRUE(sub.IsClique({0, 1, 2}));
  Graph sub2 = g.InducedSubgraph({0, 3, 5});
  EXPECT_EQ(sub2.NumEdges(), 0);
}

TEST(Graph, CliqueChecks) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_TRUE(g.IsClique({0, 1, 2}));
  EXPECT_FALSE(g.IsClique({0, 1, 3}));
  EXPECT_TRUE(g.IsClique({}));
  EXPECT_TRUE(g.IsClique({4}));
  DynamicBitset set(5);
  set.Set(0);
  set.Set(1);
  set.Set(2);
  EXPECT_TRUE(g.IsCliqueSet(set));
  set.Set(3);
  EXPECT_FALSE(g.IsCliqueSet(set));
}

TEST(Graph, VertexCoverCheck) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  DynamicBitset cover(4);
  cover.Set(1);
  cover.Set(2);
  EXPECT_TRUE(g.IsVertexCover(cover));
  cover.Reset(2);
  EXPECT_FALSE(g.IsVertexCover(cover));
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(Graph(0).IsConnected());
  EXPECT_TRUE(Graph(1).IsConnected());
  EXPECT_FALSE(Graph(2).IsConnected());
  EXPECT_TRUE(Chain(10).IsConnected());
  Graph g = Chain(10);
  g.RemoveEdge(4, 5);
  EXPECT_FALSE(g.IsConnected());
}

TEST(Graph, InducedEdgeCount) {
  Graph g = Graph::Complete(6);
  DynamicBitset s(6);
  s.Set(0);
  s.Set(2);
  s.Set(4);
  s.Set(5);
  EXPECT_EQ(g.InducedEdgeCount(s), 6);  // K4
}

TEST(Graph, DisjointUnion) {
  Graph g = DisjointUnion(Chain(3), Graph::Complete(3));
  EXPECT_EQ(g.NumVertices(), 6);
  EXPECT_EQ(g.NumEdges(), 2 + 3);
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_FALSE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.IsConnected());
}

TEST(Generators, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(Gnp(20, 0.0, &rng).NumEdges(), 0);
  EXPECT_EQ(Gnp(20, 1.0, &rng).NumEdges(), 190);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Rng rng(2);
  Graph g = Gnp(60, 0.3, &rng);
  double density = static_cast<double>(g.NumEdges()) / (60.0 * 59.0 / 2.0);
  EXPECT_NEAR(density, 0.3, 0.06);
}

TEST(Generators, RandomWithEdgeCountExact) {
  Rng rng(3);
  for (int m : {0, 1, 17, 45}) {
    Graph g = RandomWithEdgeCount(10, m, &rng);
    EXPECT_EQ(g.NumEdges(), m);
  }
}

TEST(Generators, PlantedCliqueIsClique) {
  Rng rng(4);
  std::vector<int> planted;
  Graph g = PlantedClique(40, 12, 0.2, &rng, &planted);
  EXPECT_EQ(planted.size(), 12u);
  EXPECT_TRUE(g.IsClique(planted));
}

TEST(Generators, CliqueClassDegreeBound) {
  Rng rng(5);
  std::vector<int> planted;
  Graph g = CliqueClassGraph(60, 13, 1.0, 20, &rng, &planted);
  EXPECT_GE(g.MinDegree(), 60 - 1 - 13);
  EXPECT_TRUE(g.IsClique(planted));
  EXPECT_EQ(planted.size(), 20u);
}

TEST(Generators, ConnectedWithEdgeBudget) {
  Rng rng(6);
  for (int m : {9, 15, 45}) {
    Graph g = ConnectedWithEdgeBudget(10, m, &rng);
    EXPECT_EQ(g.NumEdges(), m);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(7);
  for (int n : {1, 2, 3, 10, 100}) {
    Graph g = RandomTree(n, &rng);
    EXPECT_EQ(g.NumEdges(), n - 1);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(Generators, StructuredGraphs) {
  EXPECT_EQ(Chain(5).NumEdges(), 4);
  EXPECT_EQ(Star(5).NumEdges(), 4);
  EXPECT_EQ(Star(5).Degree(0), 4);
  EXPECT_EQ(Cycle(5).NumEdges(), 5);
  EXPECT_EQ(Cycle(5).MinDegree(), 2);
}

}  // namespace
}  // namespace aqo
