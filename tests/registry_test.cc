// OptimizerRegistry (qo/registry.h): every registered entry must produce
// exactly the bits (cost, sequence, evaluation count) of the direct call
// it wraps, for both families; aliases resolve; unknown names return
// null; the CSV parser trims.
//
// The equivalence tables below enumerate the direct calls by registry
// name — a registry entry without a direct counterpart here fails the
// test, so new optimizers must be added to both.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qo/adaptive.h"
#include "qo/analysis.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "qo/registry.h"
#include "qo/workloads.h"
#include "util/random.h"

namespace aqo {
namespace {

constexpr uint64_t kSeed = 12345;

OptimizerOptions FastQonKnobs() {
  OptimizerOptions o;
  o.samples = 100;
  o.restarts = 3;
  o.sa.iterations = 500;
  o.sa.restarts = 2;
  o.ga.population = 16;
  o.ga.generations = 10;
  return o;
}

void ExpectSameResult(const std::string& name, const OptimizerResult& reg,
                      const OptimizerResult& direct) {
  EXPECT_EQ(reg.feasible, direct.feasible) << name;
  if (!reg.feasible || !direct.feasible) return;
  EXPECT_EQ(reg.cost.Log2(), direct.cost.Log2()) << name;
  EXPECT_EQ(reg.sequence, direct.sequence) << name;
  EXPECT_EQ(reg.evaluations, direct.evaluations) << name;
}

using QonDirect = std::function<OptimizerResult(
    const QonInstance&, const OptimizerOptions&, Rng*)>;

const std::map<std::string, QonDirect>& QonDirectCalls() {
  static const std::map<std::string, QonDirect> calls = {
      {"exhaustive",
       [](const QonInstance& i, const OptimizerOptions& o, Rng*) {
         return ExhaustiveQonOptimizer(i, o);
       }},
      {"dp",
       [](const QonInstance& i, const OptimizerOptions& o, Rng*) {
         return DpQonOptimizer(i, o);
       }},
      {"greedy",
       [](const QonInstance& i, const OptimizerOptions& o, Rng*) {
         return GreedyQonOptimizer(i, o);
       }},
      {"random",
       [](const QonInstance& i, const OptimizerOptions& o, Rng* rng) {
         return RandomSamplingOptimizer(i, rng, o);
       }},
      {"ii",
       [](const QonInstance& i, const OptimizerOptions& o, Rng* rng) {
         return IterativeImprovementOptimizer(i, rng, o);
       }},
      {"sa",
       [](const QonInstance& i, const OptimizerOptions& o, Rng* rng) {
         return SimulatedAnnealingOptimizer(i, rng, o);
       }},
      {"genetic",
       [](const QonInstance& i, const OptimizerOptions& o, Rng* rng) {
         return GeneticOptimizer(i, rng, o);
       }},
      {"bnb",
       [](const QonInstance& i, const OptimizerOptions& o, Rng*) {
         return BranchAndBoundQonOptimizer(i, o).result;
       }},
      {"cout",
       [](const QonInstance& i, const OptimizerOptions&, Rng*) {
         return CoutOptimalJoinOrder(i);
       }},
      {"kbz",
       [](const QonInstance& i, const OptimizerOptions&, Rng*) {
         if (!IsTreeQueryGraph(i.graph())) return OptimizerResult{};
         return IkkbzOptimizer(i);
       }},
      {"adaptive",
       [](const QonInstance& i, const OptimizerOptions& o, Rng* rng) {
         return AdaptiveQonOptimizer(i, o, rng);
       }},
  };
  return calls;
}

void CheckQonEquivalenceOn(const QonInstance& inst) {
  OptimizerOptions knobs = FastQonKnobs();
  // Isolate adaptive's feedback from the process-wide default store. Both
  // invocations read the same (empty) committed state, so the registry
  // path and the direct call still decide identically.
  static FeedbackStore feedback_store;
  knobs.adaptive.store = &feedback_store;
  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    auto it = QonDirectCalls().find(name);
    ASSERT_NE(it, QonDirectCalls().end())
        << "registry optimizer '" << name
        << "' has no direct-call counterpart in this test; add it";
    Rng reg_rng(kSeed);
    OptimizerResult reg =
        OptimizerRegistry::Qon().Run(name, inst, knobs, &reg_rng);
    Rng direct_rng(kSeed);
    OptimizerResult direct = it->second(inst, knobs, &direct_rng);
    ExpectSameResult(name, reg, direct);
  }
}

TEST(QonRegistry, EveryEntryMatchesItsDirectCall) {
  Rng rng(31);
  CheckQonEquivalenceOn(RandomQonWorkload(8, &rng));
}

TEST(QonRegistry, EveryEntryMatchesItsDirectCallOnATree) {
  // Trees exercise kbz's feasible path (non-trees return infeasible).
  Rng rng(32);
  WorkloadOptions options;
  options.shape = WorkloadShape::kTree;
  QonInstance inst = RandomQonWorkload(8, &rng, options);
  ASSERT_TRUE(IsTreeQueryGraph(inst.graph()));
  CheckQonEquivalenceOn(inst);
}

using QohDirect = std::function<QohOptimizerResult(
    const QohInstance&, const QohOptimizerOptions&, Rng*)>;

const std::map<std::string, QohDirect>& QohDirectCalls() {
  static const std::map<std::string, QohDirect> calls = {
      {"exhaustive",
       [](const QohInstance& i, const QohOptimizerOptions&, Rng*) {
         return ExhaustiveQohOptimizer(i);
       }},
      {"greedy",
       [](const QohInstance& i, const QohOptimizerOptions&, Rng*) {
         return GreedyQohOptimizer(i);
       }},
      {"random",
       [](const QohInstance& i, const QohOptimizerOptions& o, Rng* rng) {
         return RandomSamplingQohOptimizer(i, rng, o);
       }},
      {"ii",
       [](const QohInstance& i, const QohOptimizerOptions& o, Rng* rng) {
         return IterativeImprovementQohOptimizer(i, rng, o);
       }},
      {"sa",
       [](const QohInstance& i, const QohOptimizerOptions& o, Rng* rng) {
         return SimulatedAnnealingQohOptimizer(i, rng, o);
       }},
      {"adaptive",
       [](const QohInstance& i, const QohOptimizerOptions& o, Rng* rng) {
         return AdaptiveQohOptimizer(i, o, rng);
       }},
  };
  return calls;
}

TEST(QohRegistry, EveryEntryMatchesItsDirectCall) {
  Rng rng(33);
  QohInstance inst = RandomQohWorkload(7, &rng, 0.5);
  QohOptimizerOptions knobs;
  knobs.samples = 60;
  knobs.restarts = 2;
  knobs.sa.iterations = 300;
  knobs.sa.restarts = 1;
  static FeedbackStore feedback_store;  // see CheckQonEquivalenceOn
  knobs.adaptive.store = &feedback_store;
  for (const std::string& name : QohOptimizerRegistry::Get().Names()) {
    auto it = QohDirectCalls().find(name);
    ASSERT_NE(it, QohDirectCalls().end())
        << "registry optimizer '" << name
        << "' has no direct-call counterpart in this test; add it";
    Rng reg_rng(kSeed);
    QohOptimizerResult reg =
        QohOptimizerRegistry::Get().Run(name, inst, knobs, &reg_rng);
    Rng direct_rng(kSeed);
    QohOptimizerResult direct = it->second(inst, knobs, &direct_rng);
    EXPECT_EQ(reg.feasible, direct.feasible) << name;
    if (!reg.feasible) continue;
    EXPECT_EQ(reg.cost.Log2(), direct.cost.Log2()) << name;
    EXPECT_EQ(reg.sequence, direct.sequence) << name;
    EXPECT_EQ(reg.evaluations, direct.evaluations) << name;
    EXPECT_EQ(reg.decomposition.starts, direct.decomposition.starts) << name;
  }
}

TEST(Registry, AliasesResolveToCanonicalEntries) {
  const QonOptimizerEntry* ga = OptimizerRegistry::Qon().Find("ga");
  ASSERT_NE(ga, nullptr);
  EXPECT_EQ(ga->name, "genetic");
  const QohOptimizerEntry* sample = QohOptimizerRegistry::Get().Find("sample");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->name, "random");
}

TEST(Registry, UnknownNamesReturnNull) {
  EXPECT_EQ(OptimizerRegistry::Qon().Find("no-such-optimizer"), nullptr);
  EXPECT_EQ(QohOptimizerRegistry::Get().Find(""), nullptr);
}

TEST(Registry, ParseOptimizerListTrimsAndDropsEmpties) {
  EXPECT_EQ(ParseOptimizerList(" a, b ,,c\t"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(ParseOptimizerList("").empty());
}

TEST(Registry, AdaptiveIsAFirstClassStatefulEntry) {
  const QonOptimizerEntry* qon = OptimizerRegistry::Qon().Find("adaptive");
  ASSERT_NE(qon, nullptr);
  EXPECT_FALSE(qon->deterministic);
  EXPECT_FALSE(qon->cacheable);
  EXPECT_FALSE(qon->knobs.empty());
  const QohOptimizerEntry* qoh = QohOptimizerRegistry::Get().Find("adaptive");
  ASSERT_NE(qoh, nullptr);
  EXPECT_FALSE(qoh->cacheable);
  // Every non-adaptive entry stays cacheable.
  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    if (name == "adaptive") continue;
    EXPECT_TRUE(OptimizerRegistry::Qon().Find(name)->cacheable) << name;
  }
}

TEST(Registry, DescribeListsEntriesKnobsAndAliases) {
  std::string qon = OptimizerRegistry::Qon().Describe();
  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    EXPECT_NE(qon.find(name), std::string::npos) << name;
  }
  EXPECT_NE(qon.find("--sa-iterations="), std::string::npos);
  EXPECT_NE(qon.find("--fallback="), std::string::npos);
  EXPECT_NE(qon.find("ga -> genetic"), std::string::npos);
  EXPECT_NE(qon.find("[deterministic]"), std::string::npos);
  EXPECT_NE(qon.find("[stateful: never plan-cached]"), std::string::npos);
  std::string qoh = QohOptimizerRegistry::Get().Describe();
  EXPECT_NE(qoh.find("sample -> random"), std::string::npos);
  EXPECT_NE(qoh.find("adaptive"), std::string::npos);
  // Every knob flag advertised by an entry is a real harness flag, so
  // the schema doubles as flag documentation (bench_common reads them).
  EXPECT_NE(qoh.find("--quality-target="), std::string::npos);
}

}  // namespace
}  // namespace aqo
