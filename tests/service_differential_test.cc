// The batch service's determinism contract (qo/service.h), end to end:
// for EVERY optimizer in the registry and every thread count, a batch of
// relabeled-duplicate-heavy instances optimizes to bit-identical results
// (costs, sequences, evaluation counts) whether the cache is off and
// serial, off and parallel, cold, or warm — and a warm cache serves every
// instance.

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qo/adaptive.h"
#include "qo/fingerprint.h"
#include "qo/plan_cache.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

constexpr uint64_t kSeed = 5;
const int kThreadCounts[] = {1, 2, 4};

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return perm;
}

// Three bases (one a tree, so kbz has a feasible path), each followed by
// two relabeled duplicates: 9 instances, 2/3 of them duplicate work.
std::vector<QonInstance> QonBatchInstances() {
  Rng rng(41);
  std::vector<QonInstance> bases;
  bases.push_back(RandomQonWorkload(7, &rng));
  WorkloadOptions tree;
  tree.shape = WorkloadShape::kTree;
  bases.push_back(RandomQonWorkload(7, &rng, tree));
  bases.push_back(RandomQonWorkload(6, &rng));
  std::vector<QonInstance> batch;
  for (const QonInstance& base : bases) {
    batch.push_back(base);
    for (int d = 0; d < 2; ++d) {
      batch.push_back(PermuteQonInstance(
          base, RandomPermutation(base.NumRelations(), &rng)));
    }
  }
  return batch;
}

std::vector<QohInstance> QohBatchInstances() {
  Rng rng(42);
  std::vector<QohInstance> bases;
  bases.push_back(RandomQohWorkload(6, &rng, 0.5));
  bases.push_back(RandomQohWorkload(5, &rng, 0.8));
  bases.push_back(RandomQohWorkload(6, &rng, 0.3));
  std::vector<QohInstance> batch;
  for (const QohInstance& base : bases) {
    batch.push_back(base);
    for (int d = 0; d < 2; ++d) {
      batch.push_back(PermuteQohInstance(
          base, RandomPermutation(base.NumRelations(), &rng)));
    }
  }
  return batch;
}

OptimizerOptions FastQonKnobs() {
  OptimizerOptions o;
  o.samples = 80;
  o.restarts = 2;
  o.sa.iterations = 300;
  o.sa.restarts = 1;
  o.ga.population = 16;
  o.ga.generations = 8;
  return o;
}

QohOptimizerOptions FastQohKnobs() {
  QohOptimizerOptions o;
  o.samples = 50;
  o.restarts = 2;
  o.sa.iterations = 200;
  o.sa.restarts = 1;
  return o;
}

template <typename Item>
void ExpectSameItems(const std::string& label, const std::vector<Item>& a,
                     const std::vector<Item>& b) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint) << label << " item " << i;
    EXPECT_EQ(a[i].result.feasible, b[i].result.feasible)
        << label << " item " << i;
    if (!a[i].result.feasible) continue;
    EXPECT_EQ(a[i].result.cost.Log2(), b[i].result.cost.Log2())
        << label << " item " << i;
    EXPECT_EQ(a[i].result.sequence, b[i].result.sequence)
        << label << " item " << i;
    EXPECT_EQ(a[i].result.evaluations, b[i].result.evaluations)
        << label << " item " << i;
  }
}

// Tier-differential variant of ExpectSameItems: the fast tier changes how
// much exact evaluation work runs (result.evaluations counts exact
// re-pricings only), so the contract is every *plan* bit — feasibility,
// cost bits, sequence — not the effort counter.
template <typename Item>
void ExpectSamePlans(const std::string& label, const std::vector<Item>& a,
                     const std::vector<Item>& b) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint) << label << " item " << i;
    EXPECT_EQ(a[i].result.feasible, b[i].result.feasible)
        << label << " item " << i;
    if (!a[i].result.feasible) continue;
    EXPECT_EQ(a[i].result.cost.Log2(), b[i].result.cost.Log2())
        << label << " item " << i;
    EXPECT_EQ(a[i].result.sequence, b[i].result.sequence)
        << label << " item " << i;
  }
}

TEST(ServiceDifferential, QonEvalTierNeverChangesAnyPlanBit) {
  std::vector<QonInstance> batch = QonBatchInstances();
  for (const char* name : {"ii", "sa", "genetic"}) {
    BatchOptions options;
    options.optimizer = name;
    options.qon = FastQonKnobs();
    options.seed = kSeed;

    // Reference: exact tier, serial, cache off.
    std::vector<QonBatchItem> reference = OptimizeQonBatch(batch, options);

    BatchOptions fast = options;
    fast.qon.eval_tier = EvalTier::kFast;
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      std::string label =
          std::string(name) + " fast threads=" + std::to_string(threads);
      fast.pool = &pool;

      fast.cache = nullptr;
      ExpectSamePlans(label + " nocache", reference,
                      OptimizeQonBatch(batch, fast));

      PlanCache cold_cache;
      fast.cache = &cold_cache;
      ExpectSamePlans(label + " cold", reference,
                      OptimizeQonBatch(batch, fast));
      ExpectSamePlans(label + " warm", reference,
                      OptimizeQonBatch(batch, fast));
    }
  }
}

TEST(ServiceDifferential, QohEvalTierNeverChangesAnyPlanBit) {
  std::vector<QohInstance> batch = QohBatchInstances();
  for (const char* name : {"ii", "sa"}) {
    BatchOptions options;
    options.optimizer = name;
    options.qoh = FastQohKnobs();
    options.seed = kSeed;

    std::vector<QohBatchItem> reference = OptimizeQohBatch(batch, options);

    BatchOptions fast = options;
    fast.qoh.eval_tier = EvalTier::kFast;
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      std::string label =
          std::string(name) + " fast threads=" + std::to_string(threads);
      fast.pool = &pool;

      fast.cache = nullptr;
      ExpectSamePlans(label + " nocache", reference,
                      OptimizeQohBatch(batch, fast));

      PlanCache cold_cache;
      fast.cache = &cold_cache;
      ExpectSamePlans(label + " cold", reference,
                      OptimizeQohBatch(batch, fast));
      ExpectSamePlans(label + " warm", reference,
                      OptimizeQohBatch(batch, fast));
    }
  }
}

TEST(ServiceDifferential, QonCacheAndThreadsNeverChangeAnyBit) {
  std::vector<QonInstance> batch = QonBatchInstances();
  for (const std::string& name : OptimizerRegistry::Qon().Names()) {
    const bool cacheable = OptimizerRegistry::Qon().Find(name)->cacheable;
    BatchOptions options;
    options.optimizer = name;
    options.qon = FastQonKnobs();
    options.seed = kSeed;

    // Stateful entries (adaptive) decide from their feedback store, so
    // every run gets a fresh one: the differential contract is "same
    // initial store state => same bits", not "same bits regardless of
    // what the store learned in between".
    auto run = [&batch](BatchOptions opts) {
      FeedbackStore store;
      opts.qon.adaptive.store = &store;
      return OptimizeQonBatch(batch, opts);
    };

    // Reference: cache off, serial.
    std::vector<QonBatchItem> reference = run(options);

    PlanCache shared_cache;
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      std::string label = name + " threads=" + std::to_string(threads);

      options.pool = &pool;
      options.cache = nullptr;
      ExpectSameItems(label + " nocache", reference, run(options));

      PlanCache cold_cache;
      options.cache = &cold_cache;
      std::vector<QonBatchItem> cold = run(options);
      ExpectSameItems(label + " cold", reference, cold);

      std::vector<QonBatchItem> warm = run(options);
      ExpectSameItems(label + " warm", reference, warm);
      for (size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i].from_cache, cacheable)
            << label << " warm item " << i;
      }
      if (cacheable) {
        EXPECT_GT(cold_cache.GetStats().hits, 0u) << label;
      } else {
        // Stateful entries must never be served from (or fill) the cache.
        EXPECT_EQ(cold_cache.GetStats().entries, 0u) << label;
      }

      // A cache shared across different thread counts must agree too.
      options.cache = &shared_cache;
      ExpectSameItems(label + " shared", reference, run(options));
    }
  }
}

TEST(ServiceDifferential, QohCacheAndThreadsNeverChangeAnyBit) {
  std::vector<QohInstance> batch = QohBatchInstances();
  for (const std::string& name : QohOptimizerRegistry::Get().Names()) {
    const bool cacheable = QohOptimizerRegistry::Get().Find(name)->cacheable;
    BatchOptions options;
    options.optimizer = name;
    options.qoh = FastQohKnobs();
    options.seed = kSeed;

    // Fresh feedback store per run; see the QO_N test above.
    auto run = [&batch](BatchOptions opts) {
      FeedbackStore store;
      opts.qoh.adaptive.store = &store;
      return OptimizeQohBatch(batch, opts);
    };

    std::vector<QohBatchItem> reference = run(options);

    PlanCache shared_cache;
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      std::string label = name + " threads=" + std::to_string(threads);

      options.pool = &pool;
      options.cache = nullptr;
      std::vector<QohBatchItem> parallel = run(options);
      ExpectSameItems(label + " nocache", reference, parallel);
      for (size_t i = 0; i < parallel.size(); ++i) {
        if (!reference[i].result.feasible) continue;
        EXPECT_EQ(reference[i].result.decomposition.starts,
                  parallel[i].result.decomposition.starts)
            << label << " item " << i;
      }

      PlanCache cold_cache;
      options.cache = &cold_cache;
      std::vector<QohBatchItem> cold = run(options);
      ExpectSameItems(label + " cold", reference, cold);

      std::vector<QohBatchItem> warm = run(options);
      ExpectSameItems(label + " warm", reference, warm);
      for (size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i].from_cache, cacheable)
            << label << " warm item " << i;
        if (!reference[i].result.feasible) continue;
        EXPECT_EQ(reference[i].result.decomposition.starts,
                  warm[i].result.decomposition.starts)
            << label << " item " << i;
      }
      if (cacheable) {
        EXPECT_GT(cold_cache.GetStats().hits, 0u) << label;
      } else {
        EXPECT_EQ(cold_cache.GetStats().entries, 0u) << label;
      }

      options.cache = &shared_cache;
      ExpectSameItems(label + " shared", reference, run(options));
    }
  }
}

// The sentinel_first knob is caller-label-relative; the service must
// remap it per instance, so pinning relation 0 in the base and relation
// perm[0]... in a duplicate are different cache keys — but each item's
// result still matches its own serial cold run bit for bit.
TEST(ServiceDifferential, QohSentinelFirstRemapsPerInstance) {
  Rng rng(43);
  QohInstance base = RandomQohWorkload(6, &rng, 0.5);
  std::vector<QohInstance> batch = {
      base, PermuteQohInstance(base, RandomPermutation(6, &rng))};

  BatchOptions options;
  options.optimizer = "random";
  options.qoh = FastQohKnobs();
  options.qoh.sentinel_first = 0;
  options.seed = kSeed;

  std::vector<QohBatchItem> serial = OptimizeQohBatch(batch, options);
  PlanCache cache;
  options.cache = &cache;
  std::vector<QohBatchItem> cached = OptimizeQohBatch(batch, options);
  ExpectSameItems("sentinel", serial, cached);
  for (const QohBatchItem& item : cached) {
    if (!item.result.feasible) continue;
    ASSERT_FALSE(item.result.sequence.empty());
    EXPECT_EQ(item.result.sequence.front(), 0);  // pinned in caller labels
  }
}

}  // namespace
}  // namespace aqo
