// Tests for the 3SAT -> VERTEX COVER gadget (Theorem 2 / [5]) and the
// Lemma 3 / Lemma 4 clique reductions, cross-checked with exact solvers.

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/vertex_cover.h"
#include "reductions/sat_to_clique.h"
#include "reductions/sat_to_vc.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(SatToVc, GraphShape) {
  CnfFormula f(3);
  f.AddClause3(1, 2, 3);
  f.AddClause3(-1, -2, 3);
  SatToVcResult r = ReduceSatToVertexCover(f);
  EXPECT_EQ(r.graph.NumVertices(), 2 * 3 + 3 * 2);
  // v variable edges + 3m triangle edges + 3m wiring edges.
  EXPECT_EQ(r.graph.NumEdges(), 3 + 6 + 6);
}

TEST(SatToVc, CoverFromAssignmentIsValidCover) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(6, 10, &rng);
    DpllResult sat = SolveDpll(f);
    ASSERT_TRUE(sat.assignment.has_value());
    SatToVcResult r = ReduceSatToVertexCover(f);
    std::vector<int> cover = r.CoverFromAssignment(f, *sat.assignment);
    EXPECT_EQ(static_cast<int>(cover.size()), r.CoverSizeForUnsat(0));
    DynamicBitset cover_set(r.graph.NumVertices());
    for (int v : cover) cover_set.Set(v);
    EXPECT_TRUE(r.graph.IsVertexCover(cover_set));
  }
}

TEST(SatToVc, MinCoverTracksMinUnsatExactly) {
  // The load-bearing identity: min-VC = v + 2m + u*.
  Rng rng(72);
  for (int trial = 0; trial < 25; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 5));
    int m = static_cast<int>(rng.UniformInt(1, 6));
    CnfFormula f = RandomThreeSat(std::max(n, 3), m, &rng);
    SatToVcResult r = ReduceSatToVertexCover(f);
    int u_star = f.NumClauses() - MaxSatisfiableClauses(f);
    EXPECT_EQ(MinVertexCoverSize(r.graph), r.CoverSizeForUnsat(u_star))
        << "trial=" << trial;
  }
}

TEST(SatToClique, ShapeAndThresholds) {
  CnfFormula f(3);
  f.AddClause3(1, -2, 3);
  f.AddClause3(-1, 2, -3);
  SatToCliqueResult lemma3 = ReduceSatToClique(f);
  EXPECT_EQ(lemma3.graph.NumVertices(), 6 * 3 + 6 * 2);
  EXPECT_EQ(lemma3.YesCliqueSize(), 4 * 3 + 3 * 2 + 3 + 2);
  EXPECT_GT(lemma3.EffectiveC(), 2.0 / 3.0);  // paper: c > 2/3

  SatToCliqueResult lemma4 = ReduceSatToTwoThirdsClique(f);
  EXPECT_EQ(lemma4.graph.NumVertices(), 3 * (3 + 2 * 2));
  EXPECT_EQ(3 * lemma4.YesCliqueSize(), 2 * lemma4.graph.NumVertices());
}

TEST(SatToClique, OmegaEqualsThresholdMinusMinUnsat) {
  // omega(G) = YesCliqueSize - u*, verified with the exact clique solver.
  Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 4));
    int m = static_cast<int>(rng.UniformInt(1, 4));
    CnfFormula f = RandomThreeSat(std::max(n, 3), m, &rng);
    int u_star = f.NumClauses() - MaxSatisfiableClauses(f);
    for (bool two_thirds : {false, true}) {
      SatToCliqueResult r = two_thirds ? ReduceSatToTwoThirdsClique(f)
                                       : ReduceSatToClique(f);
      MaxCliqueResult omega = MaxClique(r.graph);
      EXPECT_EQ(static_cast<int>(omega.clique.size()),
                r.CliqueSizeForUnsat(u_star))
          << "trial=" << trial << " two_thirds=" << two_thirds;
    }
  }
}

TEST(SatToClique, WitnessCliqueFromSatisfyingAssignment) {
  Rng rng(74);
  for (int trial = 0; trial < 15; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(5, 8, &rng);
    DpllResult sat = SolveDpll(f);
    ASSERT_TRUE(sat.assignment.has_value());
    for (bool two_thirds : {false, true}) {
      SatToCliqueResult r = two_thirds ? ReduceSatToTwoThirdsClique(f)
                                       : ReduceSatToClique(f);
      std::vector<int> clique = r.CliqueFromAssignment(f, *sat.assignment);
      EXPECT_EQ(static_cast<int>(clique.size()), r.YesCliqueSize());
      EXPECT_TRUE(r.graph.IsClique(clique));
    }
  }
}

TEST(SatToClique, ComplementDegreeStaysBoundedFor3Sat13) {
  // The CLIQUE instance class of Section 3: for 3SAT(13) sources, the
  // complement's max degree is at most 14 (variable edge + 13 clause slots),
  // i.e. every vertex has degree >= |V| - 15.
  Rng rng(75);
  CnfFormula raw = RandomThreeSat(10, 60, &rng);
  CnfFormula f = BoundOccurrences(raw, 13);
  SatToCliqueResult r = ReduceSatToClique(f);
  int n = r.graph.NumVertices();
  EXPECT_GE(r.graph.MinDegree(), n - 1 - 14);
}

}  // namespace
}  // namespace aqo
