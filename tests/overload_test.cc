// The deterministic load governor (qo/overload.h): cost-estimate tables,
// the declared degradation rewrites, leaky-bucket tier transitions, and
// the serve-path property the whole design exists for — the shed/degrade
// decision trace is a pure function of the request stream, bit-identical
// across thread counts and plan-cache configurations, and invariant
// under instance relabeling.

#include "qo/overload.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qo/fingerprint.h"
#include "qo/optimizers.h"
#include "qo/plan_cache.h"
#include "qo/qoh_optimizers.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

constexpr double kCostCap = 1125899906842624.0;  // 2^50, the saturation

// ---------------------------------------------------------------------------
// Cost-estimate tables.

TEST(EstimateCost, QonTableMatchesDeclaredFormulas) {
  OptimizerOptions o;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("greedy", o, 7), 49.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("kbz", o, 7), 49.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("dp", o, 7), 7.0 * 128.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("cout", o, 7), 7.0 * 128.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("adaptive", o, 7), 7.0 * 128.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("random", o, 7), 1000.0 * 7.0);
  o.samples = 10;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("random", o, 7), 70.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("ii", o, 5), 8.0 * 125.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("sa", o, 7), 3.0 * 20000.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("genetic", o, 7), 64.0 * 120.0);
  // bnb: the node budget when set, 2^n when exact.
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("bnb", o, 7), 128.0);
  o.bnb_node_limit = 37;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("bnb", o, 7), 37.0);
}

TEST(EstimateCost, QohTableMatchesDeclaredFormulas) {
  QohOptimizerOptions o;
  EXPECT_DOUBLE_EQ(EstimateQohCostUnits("greedy", o, 6), 36.0);
  EXPECT_DOUBLE_EQ(EstimateQohCostUnits("exhaustive", o, 6), 720.0);
  o.samples = 8;
  EXPECT_DOUBLE_EQ(EstimateQohCostUnits("random", o, 6), 48.0);
}

TEST(EstimateCost, UnknownNamesEstimateLikeTheWorstEntry) {
  // A typo can only over-throttle: unknown names cost n!.
  OptimizerOptions o;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("exhaustive", o, 6), 720.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("drp", o, 6), 720.0);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("", o, 6), 720.0);
}

TEST(EstimateCost, SaturatesAtTheCap) {
  OptimizerOptions o;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("exhaustive", o, 200), kCostCap);
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("dp", o, 200), kCostCap);
  QohOptimizerOptions qoh;
  EXPECT_DOUBLE_EQ(EstimateQohCostUnits("exhaustive", qoh, 200), kCostCap);
}

TEST(EstimateCost, BudgetCapsTheEstimate) {
  OptimizerOptions o;
  o.budget.max_evaluations = 100;
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("dp", o, 20), 100.0);
  // The budget never inflates a cheap request.
  EXPECT_DOUBLE_EQ(EstimateQonCostUnits("greedy", o, 5), 25.0);
}

// ---------------------------------------------------------------------------
// Degradation rewrites.

TEST(Degrade, QonExactEntriesFallToGreedy) {
  for (const char* name : {"exhaustive", "dp", "bnb", "cout", "adaptive"}) {
    OptimizerOptions o;
    EXPECT_EQ(DegradeQon(name, &o), "greedy") << name;
  }
}

TEST(Degrade, QonStochasticEntriesKeepIdentityWithClampedEffort) {
  OptimizerOptions o;
  EXPECT_EQ(DegradeQon("random", &o), "random");
  EXPECT_EQ(o.samples, 64);
  o = OptimizerOptions{};
  EXPECT_EQ(DegradeQon("ii", &o), "ii");
  EXPECT_EQ(o.restarts, 2);
  o = OptimizerOptions{};
  EXPECT_EQ(DegradeQon("sa", &o), "sa");
  EXPECT_EQ(o.sa.restarts, 1);
  EXPECT_EQ(o.sa.iterations, 2000);
  o = OptimizerOptions{};
  EXPECT_EQ(DegradeQon("genetic", &o), "genetic");
  EXPECT_EQ(o.ga.population, 16);
  EXPECT_EQ(o.ga.generations, 16);
}

TEST(Degrade, ClampNeverRaisesEffort) {
  OptimizerOptions o;
  o.samples = 10;  // already below the clamp
  EXPECT_EQ(DegradeQon("random", &o), "random");
  EXPECT_EQ(o.samples, 10);
}

TEST(Degrade, FloorEntriesPassThroughUnchanged) {
  OptimizerOptions o;
  EXPECT_EQ(DegradeQon("greedy", &o), "greedy");
  EXPECT_EQ(DegradeQon("kbz", &o), "kbz");
  EXPECT_EQ(o.samples, OptimizerOptions{}.samples);
}

TEST(Degrade, QohTable) {
  QohOptimizerOptions o;
  EXPECT_EQ(DegradeQoh("exhaustive", &o), "greedy");
  EXPECT_EQ(DegradeQoh("adaptive", &o), "greedy");
  o = QohOptimizerOptions{};
  EXPECT_EQ(DegradeQoh("sa", &o), "sa");
  EXPECT_EQ(o.sa.restarts, 1);
  EXPECT_EQ(o.sa.iterations, 1000);
  o = QohOptimizerOptions{};
  EXPECT_EQ(DegradeQoh("random", &o), "random");
  EXPECT_EQ(o.samples, 64);
}

// ---------------------------------------------------------------------------
// The governor.

TEST(LoadGovernor, DisarmedGovernorAdmitsEverything) {
  LoadGovernor governor;  // both capacities 0
  EXPECT_FALSE(governor.armed());
  for (int i = 0; i < 100; ++i) {
    OverloadDecision d = governor.OnArrival(1e18, 1e18);
    EXPECT_EQ(d.tier, OverloadTier::kAdmit);
    EXPECT_EQ(d.pressure_permille, 0u);
    EXPECT_TRUE(d.reason.empty());
  }
  EXPECT_EQ(governor.admits(), 100u);
  EXPECT_EQ(governor.sheds(), 0u);
  EXPECT_EQ(governor.PressurePermille(), 0u);
}

TEST(LoadGovernor, DepthBucketShedsWhenAdmissionWouldOverflow) {
  OverloadOptions opts;
  opts.queue_capacity = 2.0;
  opts.drain_requests = 0.25;
  opts.degrade_threshold = 1.0;  // keep the degrade tier out of the way
  LoadGovernor governor(opts);
  ASSERT_TRUE(governor.armed());

  // Hand-computed leaky-bucket walk: drain 0.25/slot against +1/admit.
  std::vector<OverloadTier> tiers;
  std::vector<uint64_t> pressures;
  for (int i = 0; i < 5; ++i) {
    OverloadDecision d = governor.OnArrival(0.0, 0.0);
    tiers.push_back(d.tier);
    pressures.push_back(d.pressure_permille);
  }
  std::vector<OverloadTier> want_tiers = {
      OverloadTier::kAdmit, OverloadTier::kAdmit, OverloadTier::kShed,
      OverloadTier::kShed, OverloadTier::kAdmit};
  std::vector<uint64_t> want_pressures = {0, 375, 750, 625, 500};
  EXPECT_EQ(tiers, want_tiers);
  EXPECT_EQ(pressures, want_pressures);
  EXPECT_EQ(governor.admits(), 3u);
  EXPECT_EQ(governor.sheds(), 2u);
  EXPECT_EQ(governor.degrades(), 0u);
}

TEST(LoadGovernor, CostBucketDegradesThenSheds) {
  OverloadOptions opts;
  opts.cost_capacity = 1000.0;
  opts.drain_cost = 100.0;
  opts.degrade_threshold = 0.5;
  LoadGovernor governor(opts);

  // Below threshold: admitted at full cost.
  EXPECT_EQ(governor.OnArrival(400.0, 80.0).tier, OverloadTier::kAdmit);
  EXPECT_EQ(governor.OnArrival(400.0, 80.0).tier, OverloadTier::kAdmit);
  // Pressure 600 permille >= 500: degraded, and the bucket charges the
  // *degraded* estimate.
  OverloadDecision d = governor.OnArrival(400.0, 80.0);
  EXPECT_EQ(d.tier, OverloadTier::kDegrade);
  EXPECT_EQ(d.pressure_permille, 600u);
  EXPECT_DOUBLE_EQ(d.cost_units, 80.0);
  EXPECT_NE(d.reason.find("degrade threshold"), std::string::npos);
  EXPECT_EQ(governor.OnArrival(400.0, 80.0).tier, OverloadTier::kDegrade);
  // Over threshold and even the cheap form would overflow: shed, and the
  // bucket is not charged (the next cheap request still degrades).
  OverloadDecision shed = governor.OnArrival(400.0, 700.0);
  EXPECT_EQ(shed.tier, OverloadTier::kShed);
  EXPECT_NE(shed.reason.find("over capacity"), std::string::npos);
  // The shed charged nothing, so one more drain slot drops pressure back
  // under the threshold: full-cost admission resumes.
  EXPECT_EQ(governor.OnArrival(400.0, 80.0).tier, OverloadTier::kAdmit);
  EXPECT_EQ(governor.admits(), 3u);
  EXPECT_EQ(governor.degrades(), 2u);
  EXPECT_EQ(governor.sheds(), 1u);
}

TEST(LoadGovernor, ControlFramesDrainWithoutDeciding) {
  OverloadOptions opts;
  opts.cost_capacity = 1000.0;
  opts.drain_cost = 100.0;
  opts.degrade_threshold = 0.5;
  LoadGovernor governor(opts);
  governor.OnArrival(600.0, 600.0);
  EXPECT_EQ(governor.PressurePermille(), 600u);
  // Three pings drain 300 cost units and decide nothing.
  governor.OnControlFrame();
  governor.OnControlFrame();
  governor.OnControlFrame();
  EXPECT_EQ(governor.PressurePermille(), 300u);
  EXPECT_EQ(governor.admits(), 1u);
  EXPECT_EQ(governor.degrades(), 0u);
  EXPECT_EQ(governor.sheds(), 0u);
  // The drained bucket admits at full cost again.
  EXPECT_EQ(governor.OnArrival(600.0, 80.0).tier, OverloadTier::kAdmit);
}

TEST(LoadGovernor, SameStreamSameDecisions) {
  OverloadOptions opts;
  opts.queue_capacity = 4.0;
  opts.drain_requests = 0.5;
  opts.cost_capacity = 3000.0;
  LoadGovernor a(opts);
  LoadGovernor b(opts);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    double cost = static_cast<double>(rng.UniformInt(1, 2000));
    double cheap = cost / 8.0;
    OverloadDecision da = a.OnArrival(cost, cheap);
    OverloadDecision db = b.OnArrival(cost, cheap);
    EXPECT_EQ(da.tier, db.tier) << i;
    EXPECT_EQ(da.pressure_permille, db.pressure_permille) << i;
    EXPECT_EQ(da.reason, db.reason) << i;
  }
  EXPECT_EQ(a.sheds(), b.sheds());
  EXPECT_EQ(a.degrades(), b.degrades());
}

// ---------------------------------------------------------------------------
// The serve-path property: the decision trace is a pure function of the
// request stream. We replay the exact serve-side procedure — estimate,
// degrade rewrite, OnArrival — over a fixed synthetic stream while the
// admitted work *actually runs* through the optimizer registry on thread
// pools of different sizes, with and without a plan cache in front. The
// trace (tier, pressure, charged cost, reason, effective optimizer per
// request) must come out byte-identical in every configuration, and
// relabeling every instance must not move a single decision.

struct StreamRequest {
  std::string optimizer;
  int n;
};

std::vector<StreamRequest> PropertyStream() {
  // Cycle through cheap and expensive entries over a range of sizes; the
  // governor below is tuned so this stream crosses all three tiers.
  const char* kNames[] = {"dp", "greedy", "sa", "random", "bnb", "genetic"};
  std::vector<StreamRequest> stream;
  for (int i = 0; i < 36; ++i) {
    stream.push_back({kNames[i % 6], 5 + (i % 4)});
  }
  return stream;
}

std::string DecisionTrace(int threads, bool with_cache, bool relabel) {
  ThreadPool pool(threads);
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  OverloadOptions opts;
  opts.queue_capacity = 6.0;
  opts.drain_requests = 0.5;
  opts.cost_capacity = 4000.0;
  opts.degrade_threshold = 0.6;
  LoadGovernor governor(opts);

  Rng inst_rng(99);  // same instance sequence in every configuration
  std::ostringstream trace;
  for (const auto& [optimizer, n] : PropertyStream()) {
    QonInstance inst = RandomQonWorkload(n, &inst_rng);
    if (relabel) {
      std::vector<int> perm(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = n - 1 - i;
      inst = PermuteQonInstance(inst, perm);
    }

    OptimizerOptions options;
    options.pool = &pool;
    OptimizerOptions degraded_options = options;
    std::string fallback = DegradeQon(optimizer, &degraded_options);
    OverloadDecision d = governor.OnArrival(
        EstimateQonCostUnits(optimizer, options, n),
        EstimateQonCostUnits(fallback, degraded_options, n));

    std::string effective =
        d.tier == OverloadTier::kDegrade ? fallback : optimizer;
    trace << OverloadTierName(d.tier) << " " << d.pressure_permille << " "
          << d.cost_units << " " << effective << " " << d.reason << "\n";
    if (d.tier == OverloadTier::kShed) continue;

    // Run the admitted (possibly degraded) work for real: its outcome —
    // and whether it was a cache hit — must not leak into later
    // decisions.
    const OptimizerOptions& eff_options =
        d.tier == OverloadTier::kDegrade ? degraded_options : options;
    CanonicalQon canon = CanonicalizeQon(inst);
    uint64_t seed = 17;
    Hash128 key =
        QonPlanCacheKey(canon.fingerprint, effective, eff_options, seed);
    CachedPlan cached;
    if (with_cache && cache.Lookup(key, &cached)) continue;
    Rng run_rng(MixSeed(seed, canon.fingerprint.lo));
    OptimizerResult result = OptimizerRegistry::Qon().Run(
        effective, canon.instance, eff_options, &run_rng);
    if (with_cache && result.feasible) {
      CachedPlan plan;
      plan.feasible = result.feasible;
      plan.sequence = result.sequence;
      plan.cost = result.cost;
      plan.evaluations = result.evaluations;
      plan.status = result.status;
      cache.Insert(key, plan);
    }
  }
  trace << "admits=" << governor.admits() << " degrades="
        << governor.degrades() << " sheds=" << governor.sheds() << "\n";
  return trace.str();
}

TEST(OverloadProperty, DecisionTraceInvariantAcrossThreadsAndCache) {
  std::string reference = DecisionTrace(1, false, false);
  // The tuned stream must actually exercise all three tiers, or the
  // invariance claim is vacuous.
  EXPECT_NE(reference.find("shed"), std::string::npos);
  EXPECT_NE(reference.find("degrade"), std::string::npos);
  EXPECT_NE(reference.find("admit"), std::string::npos);
  for (int threads : {1, 2, 4}) {
    for (bool with_cache : {false, true}) {
      EXPECT_EQ(DecisionTrace(threads, with_cache, false), reference)
          << "threads=" << threads << " cache=" << with_cache;
    }
  }
}

TEST(OverloadProperty, DecisionTraceInvariantUnderRelabeling) {
  // Estimates depend on the instance only through n, and cache keys go
  // through the canonical fingerprint, so relabeling every relation must
  // not move a single decision — even with the cache interposed.
  EXPECT_EQ(DecisionTrace(2, true, true), DecisionTrace(2, true, false));
  EXPECT_EQ(DecisionTrace(1, false, true), DecisionTrace(1, false, false));
}

}  // namespace
}  // namespace aqo
