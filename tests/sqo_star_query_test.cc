// Tests for the SQO-CP star-query cost model and the Appendix B reduction
// SPPCS -> SQO-CP, verified empirically against brute-force solvers on both
// ends (the full proof lives in the unavailable TR [7]; these tests are the
// artifact's evidence that the construction is a many-one reduction).

#include <gtest/gtest.h>

#include "sqo/partition.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/random.h"

namespace aqo {
namespace {

// A small hand-checkable instance.
SqoCpInstance TinyInstance() {
  SqoCpInstance inst;
  inst.num_satellites = 2;
  inst.ks = 4;
  inst.central_tuples = 10;
  inst.central_pages = 10;
  inst.tuples = {BigInt(30), BigInt(60)};
  inst.pages = {BigInt(30), BigInt(60)};
  inst.match = {BigInt(3), BigInt(2)};  // n_i * s_i
  inst.w = {BigInt(5), BigInt(7)};
  inst.w0 = {BigInt(10), BigInt(10)};
  inst.budget = 1000;
  return inst;
}

TEST(SqoCpCost, HandComputedPlan) {
  SqoCpInstance inst = TinyInstance();
  // R_0, R_1 (NL), R_2 (SM):
  //   first join:  b_0 + w_1 * n_0 = 10 + 5*10            = 60
  //   intermediate n = 10 * 3 = 30
  //   second join: b(W)(ks-1) + A_2 = 30*3 + 60*4         = 330
  SqoCpPlan plan;
  plan.sequence = {0, 1, 2};
  plan.methods = {JoinMethod::kNestedLoops, JoinMethod::kSortMerge};
  EXPECT_EQ(SqoCpPlanCost(inst, plan), BigInt(390));

  // R_1 first, sort-merge with R_0, then R_2 by NL:
  //   first join: A_1 + A_0 = 30*4 + 10*4                 = 160
  //   intermediate n = 10 * 3 = 30
  //   second join: n(W) * w_2 = 30*7                      = 210
  SqoCpPlan plan2;
  plan2.sequence = {1, 0, 2};
  plan2.methods = {JoinMethod::kSortMerge, JoinMethod::kNestedLoops};
  EXPECT_EQ(SqoCpPlanCost(inst, plan2), BigInt(370));
}

TEST(SqoCpSolvers, ExactMatchesBruteForce) {
  Rng rng(131);
  for (int trial = 0; trial < 60; ++trial) {
    SqoCpInstance inst;
    inst.num_satellites = static_cast<int>(rng.UniformInt(1, 5));
    inst.ks = rng.UniformInt(2, 6);
    inst.central_tuples = rng.UniformInt(1, 50);
    inst.central_pages = rng.UniformInt(1, 50);
    for (int i = 0; i < inst.num_satellites; ++i) {
      inst.tuples.push_back(rng.UniformInt(1, 100));
      inst.pages.push_back(rng.UniformInt(1, 100));
      inst.match.push_back(rng.UniformInt(1, 8));
      inst.w.push_back(rng.UniformInt(1, 40));
      inst.w0.push_back(rng.UniformInt(1, 40));
    }
    inst.budget = rng.UniformInt(1, 100000);
    SqoCpResult exact = SolveSqoCpExact(inst);
    SqoCpResult brute = SolveSqoCpBrute(inst);
    EXPECT_EQ(exact.best_cost, brute.best_cost) << "trial=" << trial;
    EXPECT_EQ(exact.within_budget, brute.within_budget);
    EXPECT_EQ(SqoCpPlanCost(inst, exact.best_plan), exact.best_cost);
  }
}

TEST(SppcsToSqoCp, ConstructionConstants) {
  SppcsInstance sppcs;
  sppcs.pairs = {{BigInt(2), BigInt(3)}, {BigInt(3), BigInt(1)}};
  sppcs.l_bound = 7;
  SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
  // J = (16 * 6)^2 = 9216; U = 4 + 6 + 1 = 11.
  EXPECT_EQ(red.j_term, BigInt(9216));
  EXPECT_EQ(red.u_term, BigInt(11));
  const SqoCpInstance& inst = red.instance;
  EXPECT_EQ(inst.num_satellites, 3);
  EXPECT_EQ(inst.central_tuples, BigInt(5) * red.j_term.Pow(3) * 11);
  EXPECT_EQ(inst.match[0], BigInt(2));
  EXPECT_EQ(inst.match[2], red.j_term);
  EXPECT_EQ(inst.budget,
            inst.central_tuples * red.j_term.Pow(2) * 4 * 8 - 1);
}

TEST(SppcsToSqoCp, WitnessPlanTracksSppcsValue) {
  // The canonical plan's cost is n_0 J^2 ks (V(A) + lower-order): it must
  // be within budget exactly when V(A) <= L.
  Rng rng(132);
  for (int trial = 0; trial < 40; ++trial) {
    int m = static_cast<int>(rng.UniformInt(1, 5));
    SppcsInstance sppcs;
    BigInt min_value;
    for (int i = 0; i < m; ++i) {
      sppcs.pairs.push_back(
          {BigInt(rng.UniformInt(2, 6)), BigInt(rng.UniformInt(1, 20))});
    }
    SppcsSolution opt = SolveSppcsBrute(sppcs);
    // Set L right at / just below the optimum to probe both sides.
    sppcs.l_bound = opt.best_value - (trial % 2 == 0 ? 0 : 1);
    SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
    SqoCpPlan witness = SqoCpWitnessPlan(red, opt.subset);
    BigInt cost = SqoCpPlanCost(red.instance, witness);
    if (trial % 2 == 0) {
      EXPECT_LE(cost, red.instance.budget) << "witness missed the budget";
    }
  }
}

TEST(SppcsToSqoCp, ManyOnePropertyExhaustive) {
  // The Appendix B claim, verified: SPPCS yes <=> an SQO-CP plan within M
  // exists, with both sides decided exactly.
  Rng rng(133);
  for (int trial = 0; trial < 60; ++trial) {
    int m = static_cast<int>(rng.UniformInt(1, 4));
    SppcsInstance sppcs;
    for (int i = 0; i < m; ++i) {
      sppcs.pairs.push_back(
          {BigInt(rng.UniformInt(2, 7)), BigInt(rng.UniformInt(1, 25))});
    }
    // Probe L around the true optimum (the interesting boundary) and at
    // random values.
    SppcsSolution opt = SolveSppcsBrute(sppcs);
    std::vector<BigInt> l_values = {opt.best_value, opt.best_value - 1,
                                    opt.best_value + 1,
                                    BigInt(rng.UniformInt(1, 200))};
    for (const BigInt& l : l_values) {
      if (l.Sign() <= 0) continue;
      sppcs.l_bound = l;
      SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
      bool sppcs_yes = opt.best_value <= l;
      SqoCpResult sqo = SolveSqoCpExact(red.instance);
      EXPECT_EQ(sppcs_yes, sqo.within_budget)
          << "trial=" << trial << " m=" << m << " L=" << l.ToString()
          << " V*=" << opt.best_value.ToString()
          << " cost=" << sqo.best_cost.ToString()
          << " M=" << red.instance.budget.ToString();
    }
  }
}

TEST(FullChain, PartitionToSqoCp) {
  // PARTITION -> SPPCS -> SQO-CP end to end: the star-query optimizer
  // decides PARTITION.
  Rng rng(134);
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 4));
    PartitionInstance inst =
        RandomPartitionInstance(n, 6, rng.Bernoulli(0.5), &rng);
    if (inst.Total() < 4) continue;
    // Drop zero values (the Appendix B WLOG needs p >= 2, c >= 1).
    PartitionInstance cleaned;
    for (int64_t v : inst.values) {
      if (v > 0) cleaned.values.push_back(v);
    }
    if (cleaned.values.size() < 1 || cleaned.Total() < 4) continue;
    ++checked;
    bool partition_yes = SolvePartitionBrute(cleaned).has_value();
    SppcsInstance sppcs = ReducePartitionToSppcs(cleaned);
    SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
    SqoCpResult sqo = SolveSqoCpExact(red.instance);
    EXPECT_EQ(partition_yes, sqo.within_budget) << "trial=" << trial;
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace aqo
