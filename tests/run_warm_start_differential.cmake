# Warm-start differential for aqo_serve (see tests/CMakeLists.txt).
#
# Generates a duplicate-heavy request stream with aqo_loadgen, then runs
# aqo_serve twice against the SAME state directory:
#
#   run 1 (cold): empty directory — every unique instance is computed,
#     journaled, and snapshotted on shutdown;
#   run 2 (warm): recovers the cache from disk first.
#
# Fails unless (a) the two stdout response streams are byte-identical —
# recovered plans must reproduce computed plans bit-for-bit — and (b) run
# 2's JSONL run-log proves the warm path actually ran: a persist_recovery
# record with entries_loaded > 0 and a plan_cache_stats record with
# hits > 0.
#
# Usage: cmake -DAQO_SERVE=<bin> -DAQO_LOADGEN=<bin> -DWORK_DIR=<dir>
#        -P run_warm_start_differential.cmake

if(NOT AQO_SERVE OR NOT AQO_LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "AQO_SERVE, AQO_LOADGEN and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${AQO_LOADGEN}" --requests=60 --bases=6 --n=7 --seed=21
          --out=${WORK_DIR}/workload.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "aqo_loadgen exited with ${rc}")
endif()

function(run_serve tag)
  execute_process(
    COMMAND "${AQO_SERVE}" --cache-dir=${WORK_DIR}/state
            --json-out=${WORK_DIR}/${tag}.jsonl
    INPUT_FILE "${WORK_DIR}/workload.bin"
    OUTPUT_FILE "${WORK_DIR}/${tag}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "aqo_serve (${tag}) exited with ${rc}")
  endif()
endfunction()

run_serve(cold)
run_serve(warm)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/cold.out" "${WORK_DIR}/warm.out"
  RESULT_VARIABLE stdout_diff)
if(NOT stdout_diff EQUAL 0)
  message(FATAL_ERROR
    "aqo_serve responses differ between cold and warm starts "
    "(${WORK_DIR}/cold.out vs warm.out) — recovered plans are not "
    "bit-identical to computed plans")
endif()

# Run 2 must prove it was actually warm.
file(STRINGS "${WORK_DIR}/warm.jsonl" warm_lines)
set(recovered_entries "")
set(warm_hits "")
foreach(line IN LISTS warm_lines)
  if(line MATCHES "\"type\":\"persist_recovery\".*\"entries_loaded\":([0-9]+)")
    set(recovered_entries "${CMAKE_MATCH_1}")
  endif()
  if(line MATCHES "\"type\":\"plan_cache_stats\".*\"hits\":([0-9]+)")
    set(warm_hits "${CMAKE_MATCH_1}")
  endif()
endforeach()

if(recovered_entries STREQUAL "")
  message(FATAL_ERROR "warm run-log has no persist_recovery record")
endif()
if(recovered_entries EQUAL 0)
  message(FATAL_ERROR "warm run recovered 0 entries — cold run persisted nothing")
endif()
if(warm_hits STREQUAL "" OR warm_hits EQUAL 0)
  message(FATAL_ERROR
    "warm run reports no plan-cache hits (hits='${warm_hits}') — the "
    "recovered entries were never used")
endif()

message(STATUS "aqo_serve warm-start differential: stdout identical; "
  "recovered ${recovered_entries} entries, ${warm_hits} warm hits")
