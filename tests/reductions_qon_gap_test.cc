// Tests for the f_N reduction (Section 4): construction shape, the
// Lemma 5/6/7/8 inequalities, and the YES/NO cost gap on small instances
// where the exact DP optimizer provides ground truth.

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qon.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(ReduceCliqueToQon, ConstructionShape) {
  Rng rng(81);
  Graph g = Gnp(10, 0.5, &rng);
  QonGapParams params{.c = 0.8, .d = 0.2, .log2_alpha = 4.0};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  EXPECT_EQ(gap.instance.NumRelations(), 10);
  EXPECT_EQ(gap.instance.graph(), g);
  // t = alpha^{(c - d/2) n} = 2^{4 * 0.7 * 10}.
  EXPECT_DOUBLE_EQ(gap.t.Log2(), 28.0);
  EXPECT_DOUBLE_EQ(gap.w.Log2(), 24.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gap.instance.size(i).Log2(), gap.t.Log2());
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      if (g.HasEdge(i, j)) {
        EXPECT_DOUBLE_EQ(gap.instance.selectivity(i, j).Log2(), -4.0);
        EXPECT_DOUBLE_EQ(gap.instance.AccessCost(i, j).Log2(), gap.w.Log2());
      } else {
        EXPECT_EQ(gap.instance.selectivity(i, j).Log2(), 0.0);
        EXPECT_DOUBLE_EQ(gap.instance.AccessCost(i, j).Log2(), gap.t.Log2());
      }
    }
  }
}

TEST(ReduceCliqueToQon, KBoundFormula) {
  Rng rng(82);
  Graph g = Gnp(10, 0.5, &rng);
  QonGapParams params{.c = 0.8, .d = 0.2, .log2_alpha = 4.0};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  double p = 0.7 * 10;
  EXPECT_DOUBLE_EQ(gap.PeakPosition(), p);
  EXPECT_DOUBLE_EQ(gap.KBound().Log2(),
                   gap.w.Log2() + 4.0 * (p * (p + 1) / 2 + 1));
  // Theorem 9(3): log K = Theta(n^2 log alpha).
  EXPECT_NEAR(gap.KBound().Log2() / (10.0 * 10.0 * 4.0), 0.25, 0.15);
}

TEST(Lemma7, EdgeBoundHoldsOnRandomGraphs) {
  Rng rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 16));
    Graph g = Gnp(n, rng.UniformReal(0.0, 1.0), &rng);
    int omega = static_cast<int>(MaxClique(g).clique.size());
    EXPECT_LE(g.NumEdges(), n * (n - 1) / 2 - n + omega);
  }
}

TEST(Lemma6, CliqueFirstCostPeaksThenDecays) {
  // Along the clique prefix, H_i rises to the peak at (c - d/2) n and then
  // decays geometrically (Lemma 5) — on a large dense instance where the
  // paper's degree argument (n >= 30/d) applies.
  Rng rng(84);
  int n = 180;
  std::vector<int> planted;
  Graph g = CliqueClassGraph(n, 13, 1.0, 120, &rng, &planted);
  QonGapParams params{.c = 120.0 / 180.0, .d = 1.0 / 6.0, .log2_alpha = 2.0};
  QonGapInstance gap = ReduceCliqueToQon(g, params);

  JoinSequence witness = CliqueFirstWitness(g, planted);
  ASSERT_FALSE(HasCartesianProduct(g, witness));
  std::vector<LogDouble> h = QonJoinCosts(gap.instance, witness);

  int peak = static_cast<int>(gap.PeakPosition());  // = 120 - 15 = 105
  // Rising phase within the clique prefix.
  for (int i = 1; i < peak - 1; ++i) {
    EXPECT_LE(h[static_cast<size_t>(i) - 1].Log2(),
              h[static_cast<size_t>(i)].Log2() + 1e-6)
        << "H_" << i << " > H_" << i + 1 << " before the peak";
  }
  // Lemma 5: beyond position cn, each H at most halves.
  for (int i = 120; i < n - 1; ++i) {
    EXPECT_LE(h[static_cast<size_t>(i)].Log2(),
              h[static_cast<size_t>(i) - 1].Log2() - 1.0)
        << "Lemma 5 decay violated at i=" << i;
  }
  // Lemma 6: total cost within K_{c,d}.
  LogDouble cost = QonSequenceCost(gap.instance, witness);
  EXPECT_LE(cost.Log2(), gap.KBound().Log2() + 1e-6);
  // ... and the bound is tight to within a factor alpha^2.
  EXPECT_GE(cost.Log2(), gap.KBound().Log2() - 2.0 * params.log2_alpha);
}

TEST(Lemma8, CertifiedLowerBoundIsSound) {
  // Every join sequence (DP gives the cheapest) costs at least the
  // certified floor computed from an omega upper bound.
  Rng rng(85);
  for (int trial = 0; trial < 25; ++trial) {
    int n = static_cast<int>(rng.UniformInt(6, 12));
    Graph g = Gnp(n, rng.UniformReal(0.3, 0.9), &rng);
    QonGapParams params{.c = 0.75, .d = 0.25,
                        .log2_alpha = rng.UniformReal(2.0, 6.0)};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    int omega = static_cast<int>(MaxClique(g).clique.size());
    OptimizerResult opt = DpQonOptimizer(gap.instance);
    ASSERT_TRUE(opt.feasible);
    EXPECT_GE(opt.cost.Log2(),
              gap.CertifiedLowerBound(omega).Log2() - 1e-6)
        << "trial=" << trial << " n=" << n << " omega=" << omega;
  }
}

TEST(Theorem9, YesNoGapOnSmallInstances) {
  // End-to-end gap with exact (DP) optima at n = 12. At this scale the
  // asymptotic Lemma 6 tail argument (which needs n >= 30/d) does not bite
  // exactly, so the YES optimum is compared against K with a constant
  // alpha^2 slack; the NO floor clears K by alpha^{(d/2)n - 1} = alpha^3,
  // so the measured gap survives the slack.
  Rng rng(86);
  int n = 12;
  QonGapParams params{.c = 0.75, .d = 0.5, .log2_alpha = 6.0};

  // YES: dense CLIQUE-class graph with a planted clique of size cn = 9.
  std::vector<int> planted;
  Graph yes_graph = CliqueClassGraph(n, 2, 1.0, 9, &rng, &planted);
  QonGapInstance yes_gap = ReduceCliqueToQon(yes_graph, params);
  JoinSequence witness = CliqueFirstWitness(yes_graph, planted);
  LogDouble witness_cost = QonSequenceCost(yes_gap.instance, witness);
  OptimizerResult yes_opt = DpQonOptimizer(yes_gap.instance);
  ASSERT_TRUE(yes_opt.feasible);
  EXPECT_LE(yes_opt.cost.Log2(), witness_cost.Log2() + 1e-9);
  EXPECT_LE(yes_opt.cost.Log2(),
            yes_gap.KBound().Log2() + 2.0 * params.log2_alpha);

  // NO: omega <= (c-d)n = 3.
  Graph no_graph;
  int omega = 100;
  while (omega > 3) {
    no_graph = Gnp(n, 0.2, &rng);
    omega = static_cast<int>(MaxClique(no_graph).clique.size());
  }
  QonGapInstance no_gap = ReduceCliqueToQon(no_graph, params);
  OptimizerResult no_opt = DpQonOptimizer(no_gap.instance);
  ASSERT_TRUE(no_opt.feasible);
  LogDouble floor = no_gap.CertifiedLowerBound(omega);
  EXPECT_GE(no_opt.cost.Log2(), floor.Log2() - 1e-6);
  EXPECT_GE(floor.Log2(), no_gap.KBound().Log2() +
                              (params.d / 2.0 * n - 1.0) * params.log2_alpha -
                              1e-6);

  // The measured gap: NO optimum clears the YES optimum by >= alpha.
  EXPECT_GT(no_opt.cost.Log2(), yes_gap.KBound().Log2());
  EXPECT_GT(no_opt.cost.Log2(), yes_opt.cost.Log2() + params.log2_alpha);
}

TEST(Theorem9, CartesianProductsOnlyIncreaseCost) {
  // Section 4's closing remark: restricting to cartesian-free sequences
  // does not change the optimum on connected gap instances.
  Rng rng(87);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = Gnp(9, 0.6, &rng);
    if (!g.IsConnected()) continue;
    QonGapParams params{.c = 0.7, .d = 0.2, .log2_alpha = 3.0};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    OptimizerResult free = DpQonOptimizer(gap.instance);
    OptimizerOptions options;
    options.forbid_cartesian = true;
    OptimizerResult restricted = DpQonOptimizer(gap.instance, options);
    ASSERT_TRUE(free.feasible && restricted.feasible);
    EXPECT_TRUE(free.cost.ApproxEquals(restricted.cost, 1e-9));
  }
}

TEST(CliqueFirstWitness, HandlesDisconnectedGraphs) {
  Graph g = DisjointUnion(Graph::Complete(3), Chain(2));
  JoinSequence seq = CliqueFirstWitness(g, {0, 1, 2});
  EXPECT_TRUE(IsPermutation(seq, 5));
  EXPECT_EQ(seq[0], 0);
  EXPECT_EQ(seq[1], 1);
  EXPECT_EQ(seq[2], 2);
}

}  // namespace
}  // namespace aqo
