// PlanCache (qo/plan_cache.h): hit/miss accounting, LRU refresh +
// eviction under the byte budget, oversized-plan rejection, and a
// multi-threaded hammer for the sharded locking.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qo/plan_cache.h"
#include "util/log_double.h"

namespace aqo {
namespace {

Hash128 Key(uint64_t x) {
  HashAccumulator acc(0x706c616e5f746573ULL);
  acc.Add(x);
  return acc.Digest();
}

// A plan whose sequence payload dominates the entry's byte estimate, so
// budget math in the tests is insensitive to bookkeeping constants.
CachedPlan BigPlan(int fill, size_t ints = 1000) {
  CachedPlan plan;
  plan.feasible = true;
  plan.sequence.assign(ints, fill);
  plan.cost = LogDouble::FromLog2(static_cast<double>(fill));
  plan.evaluations = 7;
  return plan;
}

TEST(PlanCache, MissThenHitRoundTripsThePlan) {
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
  CachedPlan out;
  EXPECT_FALSE(cache.Lookup(Key(1), &out));
  cache.Insert(Key(1), BigPlan(42, 5));
  ASSERT_TRUE(cache.Lookup(Key(1), &out));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.sequence, std::vector<int>(5, 42));
  EXPECT_EQ(out.cost.Log2(), 42.0);
  EXPECT_EQ(out.evaluations, 7u);

  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCache, LookupRefreshesRecencySoLruEvictsTheColdEntry) {
  // ~4 KB per entry, 10 KB budget, one shard: at most two entries fit.
  PlanCache cache(PlanCacheOptions{.byte_budget = 10 << 10, .shards = 1});
  cache.Insert(Key(1), BigPlan(1));
  cache.Insert(Key(2), BigPlan(2));
  ASSERT_TRUE(cache.Lookup(Key(1), nullptr));  // 1 is now most-recent
  cache.Insert(Key(3), BigPlan(3));            // must evict 2, not 1
  EXPECT_TRUE(cache.Lookup(Key(1), nullptr));
  EXPECT_FALSE(cache.Lookup(Key(2), nullptr));
  EXPECT_TRUE(cache.Lookup(Key(3), nullptr));
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCache, ReinsertingAKeyRefreshesInsteadOfDuplicating) {
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 1});
  cache.Insert(Key(1), BigPlan(1, 8));
  cache.Insert(Key(1), BigPlan(1, 8));
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, PlansLargerThanAShardAreNotCached) {
  PlanCache cache(PlanCacheOptions{.byte_budget = 2 << 10, .shards = 1});
  cache.Insert(Key(1), BigPlan(1, 1 << 14));  // ~64 KB >> 2 KB shard
  EXPECT_FALSE(cache.Lookup(Key(1), nullptr));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(PlanCache, ConcurrentLookupsAndInsertsStayConsistent) {
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 8});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>((t * 31 + i) % 64);
        CachedPlan out;
        if (!cache.Lookup(Key(k), &out)) {
          cache.Insert(Key(k), BigPlan(static_cast<int>(k), 16));
        } else {
          // Payload integrity under concurrency.
          EXPECT_EQ(out.cost.Log2(), static_cast<double>(k));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace aqo
