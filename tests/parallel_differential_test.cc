// Differential harness proving the parallel subset DP is interchangeable
// with the trusted serial DP, and that the serial DP agrees with the
// exhaustive oracle:
//
//   * every connected query graph on n <= 5 vertices (exhaustively
//     enumerated over edge subsets), serial DP vs the n! oracle and vs
//     the parallel DP on several pool sizes;
//   * every graph on 6 vertices (connected or not), parallel vs serial;
//   * random G(n, p) instances up to n = 10, parallel vs serial, with
//     and without the cartesian-product restriction;
//   * tie-break regressions: on fully symmetric instances (every
//     permutation costs the same) each optimizer must return one specific
//     sequence, a pure function of the instance.
//
// "Bit-identical" here is literal: cost compared through exact double
// equality on Log2(), plus sequence and evaluation-count equality. The
// oracle comparison allows 1e-9 relative slack because the DP and
// QonSequenceCost sum the same terms through different expression trees.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/optimizers.h"
#include "qo/qon.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

// Builds the graph whose edge set is the bits of `code` over the
// lexicographic (u < v) edge list of K_n.
Graph GraphFromCode(int n, uint64_t code) {
  Graph g(n);
  int bit = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v, ++bit) {
      if (code & (uint64_t{1} << bit)) g.AddEdge(u, v);
    }
  }
  return g;
}

// A deterministic instance for `g`: sizes and selectivities drawn from an
// Rng stream keyed by (n, code) so every test run sees the same numbers.
QonInstance InstanceFor(const Graph& g, uint64_t key) {
  Rng rng(MixSeed(0xD1FFu, key));
  int n = g.NumVertices();
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng.UniformInt(10, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng.UniformReal(0.001, 0.8)));
  }
  return inst;
}

// Exact structural equality: cost bits, sequence, feasibility, and the
// evaluation count all match.
void ExpectBitIdentical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.evaluations, b.evaluations);
  if (!a.feasible) return;
  EXPECT_EQ(a.cost.Log2(), b.cost.Log2());  // exact double equality
  EXPECT_EQ(a.sequence, b.sequence);
}

int EdgeBits(int n) { return n * (n - 1) / 2; }

TEST(ParallelDifferential, AllConnectedGraphsUpTo5MatchOracleAndParallel) {
  ThreadPool pool2(2), pool3(3), pool8(8);
  for (int n = 2; n <= 5; ++n) {
    uint64_t codes = uint64_t{1} << EdgeBits(n);
    int checked = 0;
    for (uint64_t code = 0; code < codes; ++code) {
      Graph g = GraphFromCode(n, code);
      if (!g.IsConnected()) continue;
      QonInstance inst = InstanceFor(g, (uint64_t{n} << 32) | code);
      OptimizerResult serial = DpQonOptimizerSerial(inst);
      ASSERT_TRUE(serial.feasible);

      // Serial DP vs the n! oracle: same optimum (1e-9 relative slack for
      // the differing summation trees), and the DP sequence really costs
      // what the DP claims.
      OptimizerResult oracle = ExhaustiveQonOptimizer(inst);
      ASSERT_TRUE(oracle.feasible);
      double scale = std::max(1.0, std::abs(oracle.cost.Log2()));
      EXPECT_NEAR(serial.cost.Log2(), oracle.cost.Log2(), 1e-9 * scale)
          << "n=" << n << " code=" << code;
      EXPECT_TRUE(
          QonSequenceCost(inst, serial.sequence).ApproxEquals(serial.cost, 1e-9));

      // Parallel DP is bit-identical for every pool size.
      for (ThreadPool* pool : {&pool2, &pool3, &pool8}) {
        OptimizerResult parallel = DpQonOptimizerParallel(inst, pool);
        ExpectBitIdentical(serial, parallel);
      }
      ++checked;
    }
    EXPECT_GT(checked, 0) << "n=" << n;
  }
}

TEST(ParallelDifferential, AllGraphsOn6VerticesParallelEqualsSerial) {
  // Includes disconnected graphs: reachability bookkeeping and the
  // cartesian-free pruning must agree too, not just the happy path.
  ThreadPool pool(3);
  uint64_t codes = uint64_t{1} << EdgeBits(6);
  for (uint64_t code = 0; code < codes; ++code) {
    Graph g = GraphFromCode(6, code);
    QonInstance inst = InstanceFor(g, (uint64_t{6} << 32) | code);
    for (bool forbid : {false, true}) {
      OptimizerOptions options;
      options.forbid_cartesian = forbid;
      OptimizerResult serial = DpQonOptimizerSerial(inst, options);
      OptimizerResult parallel = DpQonOptimizerParallel(inst, &pool, options);
      ExpectBitIdentical(serial, parallel);
    }
  }
}

TEST(ParallelDifferential, RandomGraphsUpTo10ParallelEqualsSerial) {
  ThreadPool pool2(2), pool5(5), pool8(8);
  Rng rng(20260807);
  for (int trial = 0; trial < 120; ++trial) {
    int n = static_cast<int>(rng.UniformInt(7, 10));
    double p = rng.UniformReal(0.2, 0.95);
    Graph g = Gnp(n, p, &rng);
    QonInstance inst = InstanceFor(g, static_cast<uint64_t>(trial) + 1000);
    for (bool forbid : {false, true}) {
      OptimizerOptions options;
      options.forbid_cartesian = forbid;
      OptimizerResult serial = DpQonOptimizerSerial(inst, options);
      for (ThreadPool* pool : {&pool2, &pool5, &pool8}) {
        OptimizerResult parallel = DpQonOptimizerParallel(inst, pool, options);
        ExpectBitIdentical(serial, parallel);
      }
      // The public entry point dispatches by options.pool and must agree
      // with both.
      OptimizerOptions pooled = options;
      pooled.pool = &pool8;
      ExpectBitIdentical(serial, DpQonOptimizer(inst, pooled));
    }
  }
}

TEST(ParallelDifferential, RandomGraphsUpTo7MatchOracle) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 7));
    Graph g = ConnectedWithEdgeBudget(
        n, static_cast<int>(rng.UniformInt(n - 1, EdgeBits(n))), &rng);
    QonInstance inst = InstanceFor(g, static_cast<uint64_t>(trial) + 5000);
    OptimizerResult serial = DpQonOptimizerSerial(inst);
    OptimizerResult oracle = ExhaustiveQonOptimizer(inst);
    ASSERT_TRUE(serial.feasible);
    ASSERT_TRUE(oracle.feasible);
    double scale = std::max(1.0, std::abs(oracle.cost.Log2()));
    EXPECT_NEAR(serial.cost.Log2(), oracle.cost.Log2(), 1e-9 * scale);
  }
}

// --- Tie-break regressions ---
//
// On a fully symmetric instance (complete graph, equal sizes, equal
// selectivities) every permutation costs exactly the same, so the returned
// sequence is decided *only* by tie-breaking. These lock in the
// lowest-relation-id rules; before the explicit tie-breaks the unstable
// std::sort calls in bnb/genetic left the choice unspecified.

QonInstance SymmetricInstance(int n) {
  Graph g = Graph::Complete(n);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(64.0));
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

TEST(TieBreakRegression, GreedyPicksLowestRelationIdOnTies) {
  QonInstance inst = SymmetricInstance(6);
  OptimizerResult r = GreedyQonOptimizer(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.sequence, IdentitySequence(6));
}

TEST(TieBreakRegression, SerialAndParallelDpAgreeOnFullySymmetricTies) {
  QonInstance inst = SymmetricInstance(7);
  ThreadPool pool(4);
  OptimizerResult serial = DpQonOptimizerSerial(inst);
  OptimizerResult parallel = DpQonOptimizerParallel(inst, &pool);
  ASSERT_TRUE(serial.feasible);
  ExpectBitIdentical(serial, parallel);
  // The DP reconstructs by peeling the recorded last relation; with the
  // lowest-id rule the peel order is 0,1,2,... so the sequence is the
  // identity reversed. What matters is that it is *this* sequence, every
  // run, for every thread count.
  JoinSequence expected = IdentitySequence(7);
  std::reverse(expected.begin(), expected.end());
  EXPECT_EQ(serial.sequence, expected);
}

TEST(TieBreakRegression, BnbExploresLowestRelationFirstOnTies) {
  QonInstance inst = SymmetricInstance(6);
  BnbResult r = BranchAndBoundQonOptimizer(inst, /*node_limit=*/0);
  ASSERT_TRUE(r.result.feasible);
  // Ties explored lowest-id first, strict improvement only: the incumbent
  // stays the identity permutation.
  EXPECT_EQ(r.result.sequence, IdentitySequence(6));
}

TEST(TieBreakRegression, GeneticElitesStableUnderAllEqualCosts) {
  QonInstance inst = SymmetricInstance(6);
  GeneticOptions options;
  options.population = 16;
  options.generations = 12;
  auto run = [&] {
    Rng rng(99);
    return GeneticOptimizer(inst, &rng, options);
  };
  OptimizerResult a = run();
  OptimizerResult b = run();
  ASSERT_TRUE(a.feasible);
  ExpectBitIdentical(a, b);
}

}  // namespace
}  // namespace aqo
