// Crash-point sweep for plan-cache persistence (qo/persist.h): for every
// fault ordinal at every persist site ("persist.append", "persist.fsync",
// "persist.snapshot"), and for thread counts {1, 2, 4}, simulate the
// crash, recover the state directory into a fresh cache, and assert that
// service batch results through the recovered cache are bit-identical to
// a cold-cache computation.
//
// The sweep is exhaustive by construction rather than by a hard-coded
// count: ordinals are tried from 0 upward until a run completes with no
// fault fired (store.failed() == false), which proves the previous
// ordinal was the last live probe. Fault ordinals come from per-store
// counters driven by the service's serial insert order, so "crash at
// append #k" means the same bytes hit disk for every thread count — that
// is what makes the recovery assertion meaningful across {1, 2, 4}.

#include <bit>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qo/persist.h"
#include "qo/plan_cache.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

// Safety net only; the sweep normally terminates by observing a
// fault-free run long before this.
constexpr uint64_t kMaxOrdinal = 64;

std::vector<QonInstance> SweepInstances() {
  std::vector<QonInstance> instances;
  for (int b = 0; b < 4; ++b) {
    Rng rng(MixSeed(1234, static_cast<uint64_t>(b)));
    instances.push_back(RandomQonWorkload(7, &rng));
  }
  // Two relabeled duplicates: cache hits inside the crashing run itself,
  // so the journal sees fewer appends than there are batch items.
  std::vector<int> perm = {2, 5, 0, 6, 1, 4, 3};
  instances.push_back(PermuteQonInstance(instances[0], perm));
  instances.push_back(PermuteQonInstance(instances[2], perm));
  return instances;
}

void ExpectBitIdentical(const std::vector<QonBatchItem>& got,
                        const std::vector<QonBatchItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got[i].result.feasible, want[i].result.feasible);
    EXPECT_EQ(got[i].result.sequence, want[i].result.sequence);
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].result.cost.Log2()),
              std::bit_cast<uint64_t>(want[i].result.cost.Log2()));
    EXPECT_EQ(got[i].result.evaluations, want[i].result.evaluations);
    EXPECT_EQ(got[i].result.status, want[i].result.status);
  }
}

std::string SweepDir(const char* site, uint64_t ordinal, int threads) {
  std::string dir = testing::TempDir() + "aqo_crash_" + site + "_" +
                    std::to_string(ordinal) + "_t" + std::to_string(threads);
  for (char& c : dir) {
    if (c == '.') c = '_';
  }
  std::filesystem::remove_all(dir);
  return dir;
}

class PersistCrashSweep : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Get().Disarm(); }
};

void RunSweep(const char* site) {
  std::vector<QonInstance> instances = SweepInstances();
  BatchOptions base;
  base.optimizer = "dp";
  base.seed = 11;

  // Cold truth, computed once with no cache and no pool.
  std::vector<QonBatchItem> cold = OptimizeQonBatch(instances, base);

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    bool swept_past_last_probe = false;
    for (uint64_t ordinal = 0; ordinal <= kMaxOrdinal; ++ordinal) {
      SCOPED_TRACE(std::string(site) + " ordinal " +
                   std::to_string(ordinal) + " threads " +
                   std::to_string(threads));
      std::string dir = SweepDir(site, ordinal, threads);

      // The crashing run: cache with write-through persistence, fault
      // armed at (site, ordinal), a batch, then a snapshot rotation so
      // the "persist.snapshot" site has probes to hit.
      bool fired;
      {
        PlanCache cache(
            PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
        // Breaker disabled: these faults simulate process death, and a
        // dead process never probes — the legacy latch (first failure
        // wedges the store) is exactly the crash being modeled. Breaker
        // recovery from *transient* faults is covered in persist_test.cc.
        PlanStore store(PersistOptions{
            .dir = dir, .fsync = true, .breaker = {.enabled = false}});
        store.AttachTo(&cache);
        FaultInjector::Get().Arm(site, ordinal);
        BatchOptions options = base;
        options.cache = &cache;
        options.pool = threads > 1 ? &pool : nullptr;
        std::vector<QonBatchItem> crashed =
            OptimizeQonBatch(instances, options);
        store.SaveSnapshot(cache);
        FaultInjector::Get().Disarm();
        fired = store.failed();
        // Even while the store is dying, the service's answers stay
        // bit-identical — persistence failures never leak into results.
        ExpectBitIdentical(crashed, cold);
      }

      // Recovery: whatever prefix reached disk must load cleanly...
      PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
      PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
      ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
      ASSERT_TRUE(stats.ok()) << stats.error;
      // ...and a batch through the recovered cache must reproduce the
      // cold results bit-for-bit (hits replay persisted bits, misses
      // recompute — indistinguishable by contract).
      BatchOptions warm_options = base;
      warm_options.cache = &warm;
      warm_options.pool = threads > 1 ? &pool : nullptr;
      ExpectBitIdentical(OptimizeQonBatch(instances, warm_options), cold);

      std::filesystem::remove_all(dir);
      if (!fired) {
        // No probe carried this ordinal: every live crash point at this
        // site has now been swept.
        swept_past_last_probe = true;
        EXPECT_GT(ordinal, 0u) << "site never fired — wrong site name?";
        break;
      }
    }
    EXPECT_TRUE(swept_past_last_probe)
        << site << ": still firing at ordinal " << kMaxOrdinal;
  }
}

TEST_F(PersistCrashSweep, AppendCrashAtEveryOrdinal) {
  RunSweep("persist.append");
}

TEST_F(PersistCrashSweep, FsyncFailureAtEveryOrdinal) {
  RunSweep("persist.fsync");
}

TEST_F(PersistCrashSweep, SnapshotCrashAtEveryOrdinal) {
  RunSweep("persist.snapshot");
}

}  // namespace
}  // namespace aqo
