// Durable plan-cache persistence (qo/persist.h): record codec round
// trips, precise strict-reader errors on every corruption class (the
// committed fixtures under examples/fixtures/persist/), lenient salvage
// of everything before a damage point, torn-tail tolerance at *every*
// truncation offset, PlanStore snapshot/journal recovery incl. a
// 10k-entry journal, and warm-vs-cold service-batch equivalence through
// a recovered cache (which exercises the QO_H pipeline-sentinel remap on
// recovered plans). Crash-point sweeps live in persist_crash_test.cc.

#include "qo/persist.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "qo/fingerprint.h"
#include "qo/plan_cache.h"
#include "qo/service.h"
#include "qo/workloads.h"
#include "util/log_double.h"
#include "util/random.h"

namespace aqo {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(AQO_EXAMPLES_DIR) + "/fixtures/persist/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A scratch state directory unique to the running test.
std::string TestDir(const std::string& tag) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = testing::TempDir() + "aqo_persist_" +
                    info->test_suite_name() + "_" + info->name() + "_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

PersistedEntry MakeEntry(uint64_t id, int seq_len, int starts_len) {
  PersistedEntry entry;
  entry.key = Hash128{id * 0x9e3779b97f4a7c15ULL + 1, ~id};
  entry.plan.feasible = true;
  for (int i = 0; i < seq_len; ++i) {
    entry.plan.sequence.push_back((i + static_cast<int>(id)) % 31);
  }
  for (int i = 0; i < starts_len; ++i) {
    entry.plan.pipeline_starts.push_back(i + 1);
  }
  entry.plan.cost = LogDouble::FromLog2(3.25 * static_cast<double>(id) - 7.0);
  entry.plan.evaluations = 17 + id;
  entry.plan.status = PlanStatus::kComplete;
  return entry;
}

void ExpectEntryEq(const PersistedEntry& got, const PersistedEntry& want) {
  EXPECT_EQ(got.key.lo, want.key.lo);
  EXPECT_EQ(got.key.hi, want.key.hi);
  EXPECT_EQ(got.plan.feasible, want.plan.feasible);
  EXPECT_EQ(got.plan.sequence, want.plan.sequence);
  EXPECT_EQ(got.plan.pipeline_starts, want.plan.pipeline_starts);
  // Bit-exact cost: compare the log2 exponents as bit patterns, so -inf
  // (a zero-cost plan) compares equal too.
  EXPECT_EQ(std::bit_cast<uint64_t>(got.plan.cost.Log2()),
            std::bit_cast<uint64_t>(want.plan.cost.Log2()));
  EXPECT_EQ(got.plan.evaluations, want.plan.evaluations);
  EXPECT_EQ(got.plan.status, want.plan.status);
}

std::string FileWith(const std::vector<PersistedEntry>& entries,
                     PersistFileKind kind = PersistFileKind::kSnapshot) {
  std::string bytes = EncodePersistHeader(kind);
  for (const PersistedEntry& e : entries) bytes += EncodePersistRecord(e);
  return bytes;
}

ParseResult<std::vector<PersistedEntry>> StrictParse(
    const std::string& bytes,
    PersistFileKind kind = PersistFileKind::kSnapshot) {
  std::istringstream is(bytes);
  return ReadPersistFile(is, kind);
}

PersistFileInfo LenientParse(const std::string& bytes,
                             PersistFileKind kind =
                                 PersistFileKind::kSnapshot) {
  std::istringstream is(bytes);
  return RecoverPersistFile(is, kind);
}

// ---------------------------------------------------------------------------
// Record codec.

TEST(PersistCodec, RoundTripsPlansOfEveryShape) {
  std::vector<PersistedEntry> entries;
  entries.push_back(MakeEntry(1, 9, 3));  // typical QO_H plan
  entries.push_back(MakeEntry(2, 9, 0));  // QO_N plan: no pipeline starts
  // n = 0: empty sequence (the empty instance is a legal, feasible plan).
  entries.push_back(MakeEntry(3, 0, 0));
  // n = 1: singleton.
  entries.push_back(MakeEntry(4, 1, 1));
  // Infeasible: no plan payload at all, cost is zero (log2 = -inf).
  PersistedEntry infeasible;
  infeasible.key = Hash128{5, 50};
  infeasible.plan.feasible = false;
  entries.push_back(infeasible);
  // Best-so-far status survives (the cacheable non-complete status).
  PersistedEntry budget = MakeEntry(6, 4, 2);
  budget.plan.status = PlanStatus::kBudgetExhausted;
  entries.push_back(budget);

  ParseResult<std::vector<PersistedEntry>> parsed =
      StrictParse(FileWith(entries));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectEntryEq((*parsed.value)[i], entries[i]);
  }
}

TEST(PersistCodec, EmptyFileIsAValidEmptySet) {
  ParseResult<std::vector<PersistedEntry>> parsed =
      StrictParse(FileWith({}));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.value->empty());
}

// ---------------------------------------------------------------------------
// Strict-reader errors: every corruption class has a precise reason.

void ExpectStrictError(const std::string& bytes, const std::string& reason,
                       PersistFileKind kind = PersistFileKind::kSnapshot) {
  ParseResult<std::vector<PersistedEntry>> parsed = StrictParse(bytes, kind);
  ASSERT_FALSE(parsed.ok()) << "accepted corrupt bytes";
  EXPECT_NE(parsed.error.find(reason), std::string::npos)
      << "error was: " << parsed.error << " (wanted substring: " << reason
      << ")";
}

TEST(PersistStrict, HeaderCorruptionReasons) {
  std::string valid = FileWith({MakeEntry(1, 3, 0)});

  std::string bad_magic = valid;
  bad_magic[3] ^= 0xFF;
  ExpectStrictError(bad_magic, "bad magic");

  std::string wrong_version = valid;
  wrong_version[8] = 99;
  ExpectStrictError(wrong_version, "unsupported format version 99");

  ExpectStrictError(valid.substr(0, 10), "truncated header (10 of 16 bytes)");
  ExpectStrictError(valid, "wrong file kind 1 (expected 2 = log)",
                    PersistFileKind::kLog);
}

TEST(PersistStrict, RecordCorruptionReasons) {
  std::string valid = FileWith({MakeEntry(1, 3, 0), MakeEntry(2, 3, 0)});
  size_t record0_end = 16 + 8 + 44 + 12;

  std::string crc_flip = valid;
  crc_flip[record0_end + 8 + 2] ^= 0x01;  // inside record #1's payload
  ExpectStrictError(crc_flip, "record #1: CRC mismatch");

  std::string torn = valid.substr(0, valid.size() - 5);
  ExpectStrictError(torn, "torn final record");

  // A flipped length byte makes the stored CRC cover different bytes, so
  // it surfaces as either a CRC mismatch or a torn record — both stop a
  // strict read.
  std::string bad_len = valid;
  bad_len[record0_end] ^= 0x04;
  EXPECT_FALSE(StrictParse(bad_len).ok());
}

TEST(PersistStrict, PayloadValidationRejectsPoisonBits) {
  // Corrupt specific payload fields but keep the CRC consistent by
  // re-encoding the frame around the mutated payload, so validation (not
  // the checksum) must catch each one.
  auto reframe = [](const std::string& payload) {
    std::string file = EncodePersistHeader(PersistFileKind::kSnapshot);
    std::string record;
    for (int i = 0; i < 4; ++i) {
      record.push_back(
          static_cast<char>((payload.size() >> (8 * i)) & 0xFF));
    }
    uint32_t crc = Crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
      record.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    }
    return file + record + payload;
  };

  std::string base_record = EncodePersistRecord(MakeEntry(1, 2, 0));
  std::string payload = base_record.substr(8);

  std::string bad_feasible = payload;
  bad_feasible[16] = 7;
  ExpectStrictError(reframe(bad_feasible), "invalid feasible flag 7");

  std::string bad_status = payload;
  bad_status[17] = 9;
  ExpectStrictError(reframe(bad_status), "invalid plan status 9");

  std::string bad_cost = payload;
  for (int i = 0; i < 8; ++i) {
    bad_cost[36 + i] = static_cast<char>(0xFF);  // a NaN bit pattern
  }
  ExpectStrictError(reframe(bad_cost), "invalid cost bits");

  std::string bad_seq_len = payload;
  bad_seq_len[20] = 5;  // claims 5 sequence ints; payload carries 2
  ExpectStrictError(reframe(bad_seq_len), "length mismatch");

  std::string negative_id = payload;
  for (int i = 0; i < 4; ++i) {
    negative_id[44 + i] = static_cast<char>(0xFF);  // sequence[0] = -1
  }
  ExpectStrictError(reframe(negative_id), "negative relation id");
}

// ---------------------------------------------------------------------------
// Lenient salvage.

TEST(PersistRecover, SalvagesEveryRecordBeforeTheDamage) {
  std::vector<PersistedEntry> entries = {MakeEntry(1, 4, 2), MakeEntry(2, 4, 2),
                                         MakeEntry(3, 4, 2)};
  std::string valid = FileWith(entries);
  size_t record_size = 8 + 44 + 4 * 6;
  // Flip a payload byte of record #2: records #0 and #1 must salvage.
  std::string damaged = valid;
  damaged[16 + 2 * record_size + 8 + 1] ^= 0x10;
  PersistFileInfo info = LenientParse(damaged);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_NE(info.damage.find("record #2: CRC mismatch"), std::string::npos)
      << info.damage;
  ASSERT_EQ(info.entries.size(), 2u);
  ExpectEntryEq(info.entries[0], entries[0]);
  ExpectEntryEq(info.entries[1], entries[1]);
}

TEST(PersistRecover, ToleratesTruncationAtEveryByteOffset) {
  std::vector<PersistedEntry> entries = {MakeEntry(1, 3, 1),
                                         MakeEntry(2, 3, 1)};
  std::string valid = FileWith(entries);
  size_t record_size = 8 + 44 + 4 * 4;
  size_t header_end = 16;
  for (size_t cut = header_end; cut < valid.size(); ++cut) {
    SCOPED_TRACE(cut);
    PersistFileInfo info = LenientParse(valid.substr(0, cut));
    EXPECT_TRUE(info.damage.empty()) << info.damage;
    size_t whole_records = (cut - header_end) / record_size;
    bool mid_record = (cut - header_end) % record_size != 0;
    EXPECT_EQ(info.entries.size(), whole_records);
    EXPECT_EQ(info.torn_tail, mid_record);
    for (size_t i = 0; i < info.entries.size(); ++i) {
      ExpectEntryEq(info.entries[i], entries[i]);
    }
  }
}

TEST(PersistRecover, HeaderDamageSalvagesNothing) {
  std::string valid = FileWith({MakeEntry(1, 2, 0)});
  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  PersistFileInfo info = LenientParse(bad_magic);
  EXPECT_TRUE(info.entries.empty());
  EXPECT_NE(info.damage.find("bad magic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Committed corruption fixtures (examples/fixtures/persist/, generated by
// tools/persist_fixture_gen.cc). These pin the on-disk format: if the
// codec changes shape, these tests fail before any deployed state breaks.

TEST(PersistFixtures, ValidFixtureRoundTrips) {
  ParseResult<std::vector<PersistedEntry>> parsed =
      StrictParse(ReadFileBytes(FixturePath("valid.bin")));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value->size(), 2u);
  EXPECT_EQ((*parsed.value)[0].key.lo, 0x1111111111111111ULL);
  EXPECT_EQ((*parsed.value)[0].plan.sequence,
            (std::vector<int>{1, 3, 2, 4}));
  EXPECT_EQ((*parsed.value)[0].plan.pipeline_starts,
            (std::vector<int>{1, 3}));
  EXPECT_EQ((*parsed.value)[0].plan.cost.Log2(), 10.5);
  EXPECT_EQ((*parsed.value)[1].plan.cost.Log2(), 11.5);
}

TEST(PersistFixtures, EachCorruptionReportsItsPreciseReason) {
  ExpectStrictError(ReadFileBytes(FixturePath("bad_magic.bin")),
                    "bad magic (not an AQO plan-cache file)");
  ExpectStrictError(ReadFileBytes(FixturePath("wrong_version.bin")),
                    "unsupported format version 99 (expected 1)");
  ExpectStrictError(ReadFileBytes(FixturePath("truncated_header.bin")),
                    "truncated header (6 of 16 bytes)");
  ExpectStrictError(ReadFileBytes(FixturePath("crc_flip.bin")),
                    "record #1: CRC mismatch");
  ExpectStrictError(ReadFileBytes(FixturePath("torn_tail.bin")),
                    "torn final record");
}

TEST(PersistFixtures, DamagedFixturesSalvageEverythingBeforeTheDamage) {
  for (const char* name : {"crc_flip.bin", "torn_tail.bin"}) {
    SCOPED_TRACE(name);
    PersistFileInfo info = LenientParse(ReadFileBytes(FixturePath(name)));
    ASSERT_EQ(info.entries.size(), 1u) << "record #0 must salvage";
    EXPECT_EQ(info.entries[0].key.lo, 0x1111111111111111ULL);
    EXPECT_EQ(info.entries[0].plan.cost.Log2(), 10.5);
  }
}

// ---------------------------------------------------------------------------
// PlanStore: snapshot + journal lifecycle.

CachedPlan TestPlan(int tag) {
  CachedPlan plan;
  plan.feasible = true;
  plan.sequence = {tag % 5, (tag + 1) % 5, (tag + 2) % 5};
  plan.cost = LogDouble::FromLog2(1.5 * tag);
  plan.evaluations = static_cast<uint64_t>(tag) * 3 + 1;
  return plan;
}

Hash128 TestKey(uint64_t i) {
  HashAccumulator acc(0x70657273697374ULL);
  acc.Add(i);
  return acc.Digest();
}

TEST(PlanStore, SnapshotThenRecoverReproducesTheCache) {
  std::string dir = TestDir("snap");
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
  for (int i = 0; i < 32; ++i) cache.Insert(TestKey(i), TestPlan(i));

  PlanStore store(PersistOptions{.dir = dir, .fsync = false});
  ASSERT_TRUE(store.SaveSnapshot(cache)) << store.error();

  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->had_snapshot);
  EXPECT_EQ(stats.value->snapshot_entries, 32u);
  EXPECT_EQ(stats.value->entries_loaded, 32u);
  EXPECT_FALSE(stats.value->torn_tail);
  for (int i = 0; i < 32; ++i) {
    CachedPlan out;
    ASSERT_TRUE(warm.Lookup(TestKey(i), &out)) << i;
    EXPECT_EQ(out.sequence, TestPlan(i).sequence);
    EXPECT_EQ(std::bit_cast<uint64_t>(out.cost.Log2()),
              std::bit_cast<uint64_t>(TestPlan(i).cost.Log2()));
    EXPECT_EQ(out.evaluations, TestPlan(i).evaluations);
  }
}

TEST(PlanStore, WriteThroughJournalRecoversWithoutASnapshot) {
  std::string dir = TestDir("journal");
  {
    PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
    PlanStore store(PersistOptions{.dir = dir, .fsync = false});
    store.AttachTo(&cache);
    for (int i = 0; i < 10; ++i) cache.Insert(TestKey(i), TestPlan(i));
    EXPECT_FALSE(store.failed()) << store.error();
    // Re-inserting an existing key is a refresh, not a new insert: no
    // duplicate journal record.
    cache.Insert(TestKey(3), TestPlan(3));
  }
  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_FALSE(stats.value->had_snapshot);
  EXPECT_TRUE(stats.value->had_log);
  EXPECT_EQ(stats.value->log_entries, 10u);
  EXPECT_EQ(warm.GetStats().entries, 10u);
}

TEST(PlanStore, TornJournalTailIsRepairedAndAppendable) {
  std::string dir = TestDir("repair");
  {
    PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
    PlanStore store(PersistOptions{.dir = dir, .fsync = false});
    store.AttachTo(&cache);
    for (int i = 0; i < 4; ++i) cache.Insert(TestKey(i), TestPlan(i));
  }
  // Tear the last record, as a crash mid-append would.
  std::string path = dir + "/journal.log";
  std::string bytes = ReadFileBytes(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));

  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore store(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = store.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->torn_tail);
  EXPECT_EQ(stats.value->log_entries, 3u);

  // The tail was truncated at recovery; appending extends a clean file.
  store.AttachTo(&warm);
  warm.Insert(TestKey(100), TestPlan(100));
  EXPECT_FALSE(store.failed()) << store.error();

  PlanCache warm2(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats2 = reader.LoadAndRecover(&warm2);
  ASSERT_TRUE(stats2.ok()) << stats2.error;
  EXPECT_FALSE(stats2.value->torn_tail);
  EXPECT_EQ(stats2.value->log_entries, 4u);  // 3 salvaged + 1 appended
}

TEST(PlanStore, UnreadableHeaderIsAHardError) {
  std::string dir = TestDir("alien");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/snapshot.bin", std::ios::binary)
      << "definitely not an AQO file";
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore store(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = store.LoadAndRecover(&cache);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("snapshot.bin"), std::string::npos);
  EXPECT_NE(stats.error.find("bad magic"), std::string::npos);
}

// Acceptance criterion: a 10k-entry journal recovers with every record's
// CRC verified, and the latency lands in qo.persist.recover_us.
TEST(PlanStore, TenThousandEntryJournalRecovers) {
  std::string dir = TestDir("10k");
  constexpr int kEntries = 10000;
  {
    PlanCache cache(PlanCacheOptions{.byte_budget = 64 << 20, .shards = 8});
    PlanStore store(PersistOptions{.dir = dir, .fsync = false});
    store.AttachTo(&cache);
    for (int i = 0; i < kEntries; ++i) cache.Insert(TestKey(i), TestPlan(i));
    EXPECT_FALSE(store.failed()) << store.error();
  }
  uint64_t recover_count_before = obs::Registry::Get()
                                      .GetHistogram("qo.persist.recover_us")
                                      .Snapshot()
                                      .count;

  PlanCache warm(PlanCacheOptions{.byte_budget = 64 << 20, .shards = 8});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(stats.value->log_entries, static_cast<uint64_t>(kEntries));
  EXPECT_EQ(stats.value->entries_loaded, static_cast<uint64_t>(kEntries));
  EXPECT_TRUE(stats.value->damage.empty()) << stats.value->damage;
  EXPECT_EQ(warm.GetStats().entries, static_cast<uint64_t>(kEntries));
  // recover_us was recorded (the histogram saw one more sample)...
  uint64_t recover_count_after = obs::Registry::Get()
                                     .GetHistogram("qo.persist.recover_us")
                                     .Snapshot()
                                     .count;
  EXPECT_EQ(recover_count_after, recover_count_before + 1);
  // ...and spot-check recovered bits across the range.
  for (int i : {0, 1, 4999, 9998, 9999}) {
    CachedPlan out;
    ASSERT_TRUE(warm.Lookup(TestKey(i), &out)) << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(out.cost.Log2()),
              std::bit_cast<uint64_t>(TestPlan(i).cost.Log2()));
  }
}

// ---------------------------------------------------------------------------
// The circuit breaker (docs/robustness.md): a write failure trips the
// store read-only instead of latching it dead; a deterministic backoff
// counted in refused writes schedules a probe append that repairs the
// torn tail and reopens the breaker. persist_crash_test.cc pins the
// breaker *off* (its faults simulate process death); these tests cover
// the transient-fault path the breaker exists for.

// The backoff window Fail() computes for trip number `trip` — replicated
// here so the tests assert the exact probe point, not just "eventually".
uint64_t ExpectedBackoff(const PersistBreakerOptions& breaker,
                         uint64_t trip) {
  uint64_t shift = trip > 20 ? 20 : trip - 1;
  uint64_t base = breaker.backoff_base << shift;
  if (base > breaker.backoff_max) base = breaker.backoff_max;
  Rng jitter(MixSeed(breaker.seed, trip));
  return base + static_cast<uint64_t>(jitter.UniformInt(
                    0, static_cast<int64_t>(breaker.backoff_base)));
}

TEST(PlanStoreBreaker, TripRefuseProbeReopenRepairsTheJournal) {
  std::string dir = TestDir("trip");
  PersistOptions options{.dir = dir, .fsync = false};
  options.breaker.backoff_base = 4;
  options.breaker.backoff_max = 64;
  options.breaker.seed = 7;
  const uint64_t backoff = ExpectedBackoff(options.breaker, 1);

  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore store(options);
  store.AttachTo(&cache);
  for (int i = 0; i < 3; ++i) cache.Insert(TestKey(i), TestPlan(i));
  ASSERT_FALSE(store.failed()) << store.error();

  // The 4th append tears mid-record: healthy -> read-only, one trip.
  FaultInjector::Get().Arm("persist.append", 3);
  cache.Insert(TestKey(3), TestPlan(3));
  FaultInjector::Get().Disarm();
  EXPECT_EQ(store.health(), PersistHealth::kReadOnly);
  EXPECT_TRUE(store.failed());
  EXPECT_EQ(store.breaker_trips(), 1u);
  EXPECT_NE(store.error().find("injected crash"), std::string::npos);
  EXPECT_DOUBLE_EQ(
      obs::Registry::Get().GetGauge("qo.persist.health").Value(),
      static_cast<double>(PersistHealth::kReadOnly));

  // The next backoff-1 writes are refused; the store stays read-only and
  // never touches the (torn) journal.
  int next = 4;
  for (uint64_t r = 0; r + 1 < backoff; ++r) {
    cache.Insert(TestKey(next), TestPlan(next));
    ++next;
    EXPECT_EQ(store.health(), PersistHealth::kReadOnly);
  }
  EXPECT_EQ(store.breaker_probes(), 0u);

  // Write number `backoff` is the probe: the journal reopen repairs the
  // torn tail first, the append succeeds, and the breaker reopens.
  const int probe_key = next;
  cache.Insert(TestKey(next), TestPlan(next));
  ++next;
  EXPECT_EQ(store.health(), PersistHealth::kHealthy);
  EXPECT_FALSE(store.failed());
  EXPECT_TRUE(store.error().empty());
  EXPECT_EQ(store.breaker_probes(), 1u);
  EXPECT_EQ(store.breaker_reopens(), 1u);
  EXPECT_DOUBLE_EQ(
      obs::Registry::Get().GetGauge("qo.persist.health").Value(),
      static_cast<double>(PersistHealth::kHealthy));

  // Post-reopen appends flow normally again.
  const int final_key = next;
  cache.Insert(TestKey(next), TestPlan(next));
  EXPECT_FALSE(store.failed());

  // Recovery sees exactly the pre-trip entries plus the probe-and-later
  // entries — no damage and no torn tail, because the probe truncated
  // the tear before re-appending. The faulted and refused entries never
  // reached disk.
  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->damage.empty()) << stats.value->damage;
  EXPECT_FALSE(stats.value->torn_tail);
  EXPECT_EQ(stats.value->log_entries, 5u);
  for (int i : {0, 1, 2, probe_key, final_key}) {
    CachedPlan out;
    EXPECT_TRUE(warm.Lookup(TestKey(i), &out)) << i;
  }
  CachedPlan out;
  EXPECT_FALSE(warm.Lookup(TestKey(3), &out));
}

TEST(PlanStoreBreaker, FailedProbeEscalatesToOpenThenRecovers) {
  std::string dir = TestDir("escalate");
  PersistOptions options{.dir = dir, .fsync = false};
  options.breaker.backoff_base = 4;
  options.breaker.backoff_max = 64;
  options.breaker.seed = 11;
  const uint64_t backoff1 = ExpectedBackoff(options.breaker, 1);
  const uint64_t backoff2 = ExpectedBackoff(options.breaker, 2);
  // Trip 2 doubles the base (8 + jitter): the ladder actually ladders.
  EXPECT_GE(backoff2, 8u);

  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore store(options);
  store.AttachTo(&cache);
  cache.Insert(TestKey(0), TestPlan(0));
  ASSERT_FALSE(store.failed()) << store.error();

  // Two shots at any ordinal: refused writes never reach the fault site,
  // so shot one is the trip and shot two is the failed probe.
  FaultInjector::Get().Arm("persist.append", FaultInjector::kAnyOrdinal,
                           /*times=*/2);
  int next = 1;
  cache.Insert(TestKey(next), TestPlan(next));
  ++next;
  EXPECT_EQ(store.health(), PersistHealth::kReadOnly);
  EXPECT_EQ(store.breaker_trips(), 1u);
  for (uint64_t r = 0; r + 1 < backoff1; ++r) {
    cache.Insert(TestKey(next), TestPlan(next));
    ++next;
  }
  EXPECT_EQ(store.breaker_probes(), 0u);
  // The probe fails too: read-only escalates to open.
  cache.Insert(TestKey(next), TestPlan(next));
  ++next;
  FaultInjector::Get().Disarm();
  EXPECT_EQ(store.health(), PersistHealth::kOpen);
  EXPECT_EQ(store.breaker_trips(), 2u);
  EXPECT_EQ(store.breaker_probes(), 1u);
  EXPECT_EQ(store.breaker_reopens(), 0u);
  EXPECT_DOUBLE_EQ(
      obs::Registry::Get().GetGauge("qo.persist.health").Value(),
      static_cast<double>(PersistHealth::kOpen));

  // The longer second window elapses; the healthy probe closes the loop.
  for (uint64_t r = 0; r + 1 < backoff2; ++r) {
    cache.Insert(TestKey(next), TestPlan(next));
    ++next;
    EXPECT_EQ(store.health(), PersistHealth::kOpen);
  }
  cache.Insert(TestKey(next), TestPlan(next));
  EXPECT_EQ(store.health(), PersistHealth::kHealthy);
  EXPECT_EQ(store.breaker_probes(), 2u);
  EXPECT_EQ(store.breaker_reopens(), 1u);

  // The journal is clean end to end despite two mid-record tears.
  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->damage.empty()) << stats.value->damage;
  EXPECT_FALSE(stats.value->torn_tail);
}

TEST(PlanStoreBreaker, SnapshotWritesAreGatedAndCanProbe) {
  std::string dir = TestDir("snapgate");
  PersistOptions options{.dir = dir, .fsync = false};
  options.breaker.backoff_base = 2;
  options.breaker.seed = 3;
  const uint64_t backoff = ExpectedBackoff(options.breaker, 1);

  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  for (int i = 0; i < 8; ++i) cache.Insert(TestKey(i), TestPlan(i));
  PlanStore store(options);

  FaultInjector::Get().Arm("persist.snapshot", 0);
  EXPECT_FALSE(store.SaveSnapshot(cache));
  FaultInjector::Get().Disarm();
  EXPECT_EQ(store.health(), PersistHealth::kReadOnly);

  // Snapshot attempts are refused through the same gate...
  for (uint64_t r = 0; r + 1 < backoff; ++r) {
    EXPECT_FALSE(store.SaveSnapshot(cache));
    EXPECT_EQ(store.health(), PersistHealth::kReadOnly);
  }
  // ...and the probe slot lets a snapshot through and reopens.
  EXPECT_TRUE(store.SaveSnapshot(cache)) << store.error();
  EXPECT_EQ(store.health(), PersistHealth::kHealthy);
  EXPECT_EQ(store.breaker_reopens(), 1u);

  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->had_snapshot);
  EXPECT_EQ(stats.value->snapshot_entries, 8u);
}

TEST(PlanStoreBreaker, DisabledBreakerLatchesForever) {
  std::string dir = TestDir("latch");
  PersistOptions options{.dir = dir, .fsync = false};
  options.breaker.enabled = false;  // legacy crash semantics
  PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 2});
  PlanStore store(options);
  store.AttachTo(&cache);
  cache.Insert(TestKey(0), TestPlan(0));
  ASSERT_FALSE(store.failed()) << store.error();

  FaultInjector::Get().Arm("persist.append", 1);
  cache.Insert(TestKey(1), TestPlan(1));
  FaultInjector::Get().Disarm();
  EXPECT_TRUE(store.failed());

  // No backoff window ever elapses: 50 more writes, zero probes.
  for (int i = 2; i < 52; ++i) cache.Insert(TestKey(i), TestPlan(i));
  EXPECT_TRUE(store.failed());
  EXPECT_EQ(store.breaker_probes(), 0u);
  EXPECT_EQ(store.breaker_reopens(), 0u);
  EXPECT_EQ(store.breaker_trips(), 1u);
}

// ---------------------------------------------------------------------------
// Sequence-relabeling edge cases (qo/fingerprint.h): the mapping applied
// to every cache hit, including recovered ones.

TEST(MapSequence, EmptyAndSingleton) {
  EXPECT_TRUE(MapSequenceFromCanonical({}, {}).empty());
  EXPECT_EQ(MapSequenceFromCanonical({0}, {0}), (JoinSequence{0}));
  // A singleton under a non-identity labeling still maps through.
  EXPECT_EQ(MapSequenceFromCanonical({1}, {3, 7}), (JoinSequence{7}));
}

// ---------------------------------------------------------------------------
// Warm service batches through a recovered cache are bit-identical to a
// cold computation — including QO_H, whose cached plans carry pipeline
// starts that must survive the persist round trip.

template <typename Item>
void ExpectItemsBitIdentical(const std::vector<Item>& got,
                             const std::vector<Item>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got[i].result.feasible, want[i].result.feasible);
    EXPECT_EQ(got[i].result.sequence, want[i].result.sequence);
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].result.cost.Log2()),
              std::bit_cast<uint64_t>(want[i].result.cost.Log2()));
    EXPECT_EQ(got[i].result.evaluations, want[i].result.evaluations);
    EXPECT_EQ(got[i].result.status, want[i].result.status);
  }
}

TEST(PersistService, RecoveredQohCacheReproducesColdResultsBitwise) {
  std::vector<QohInstance> instances;
  for (int b = 0; b < 4; ++b) {
    Rng rng(MixSeed(99, static_cast<uint64_t>(b)));
    instances.push_back(RandomQohWorkload(7, &rng));
    // A relabeled duplicate of each base, so warm hits cover the
    // canonical-to-caller remap (pipeline sentinel included).
    std::vector<int> perm = {3, 0, 6, 2, 5, 1, 4};
    instances.push_back(PermuteQohInstance(instances.back(), perm));
  }

  BatchOptions options;
  options.optimizer = "greedy";
  options.seed = 7;

  // Cold truth: no cache at all.
  std::vector<QohBatchItem> cold = OptimizeQohBatch(instances, options);

  // Populate a cache with a store attached, journaling every insert.
  std::string dir = TestDir("qoh");
  {
    PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
    PlanStore store(PersistOptions{.dir = dir, .fsync = false});
    store.AttachTo(&cache);
    BatchOptions with_cache = options;
    with_cache.cache = &cache;
    ExpectItemsBitIdentical(OptimizeQohBatch(instances, with_cache), cold);
    EXPECT_FALSE(store.failed()) << store.error();
  }

  // Recover into a fresh cache; every item must now hit and still match.
  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  ASSERT_GT(stats.value->entries_loaded, 0u);
  BatchOptions warm_options = options;
  warm_options.cache = &warm;
  std::vector<QohBatchItem> warmed = OptimizeQohBatch(instances, warm_options);
  for (const QohBatchItem& item : warmed) EXPECT_TRUE(item.from_cache);
  ExpectItemsBitIdentical(warmed, cold);
}

TEST(PersistService, RecoveredQonCacheReproducesColdResultsBitwise) {
  std::vector<QonInstance> instances;
  for (int b = 0; b < 4; ++b) {
    Rng rng(MixSeed(42, static_cast<uint64_t>(b)));
    instances.push_back(RandomQonWorkload(8, &rng));
  }
  BatchOptions options;
  options.optimizer = "dp";
  options.seed = 3;
  std::vector<QonBatchItem> cold = OptimizeQonBatch(instances, options);

  std::string dir = TestDir("qon");
  {
    PlanCache cache(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
    PlanStore store(PersistOptions{.dir = dir, .fsync = false});
    store.AttachTo(&cache);
    BatchOptions with_cache = options;
    with_cache.cache = &cache;
    OptimizeQonBatch(instances, with_cache);
    ASSERT_TRUE(store.SaveSnapshot(cache)) << store.error();
  }

  PlanCache warm(PlanCacheOptions{.byte_budget = 1 << 20, .shards = 4});
  PlanStore reader(PersistOptions{.dir = dir, .fsync = false});
  ParseResult<RecoveryStats> stats = reader.LoadAndRecover(&warm);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.value->had_snapshot);
  BatchOptions warm_options = options;
  warm_options.cache = &warm;
  std::vector<QonBatchItem> warmed = OptimizeQonBatch(instances, warm_options);
  for (const QonBatchItem& item : warmed) EXPECT_TRUE(item.from_cache);
  ExpectItemsBitIdentical(warmed, cold);
}

}  // namespace
}  // namespace aqo
