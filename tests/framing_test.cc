// The wire framing layer (io/framing.h): codec round trips, the precise
// error for every malformed-stream shape, fd-level helpers, and the
// FrameReader resynchronization contract — garbage between frames is
// skipped and counted, never silently swallowed and never fatal, while a
// truncated stream in a clean state is still a hard error. The committed
// fixtures (examples/fixtures/frames_{valid,garbage}.bin) pin the exact
// byte streams the serve corrupt-frame regression replays.

#include "io/framing.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aqo {
namespace {

// The serve protocol's resync validator (tools/aqo_serve.cc): a
// candidate payload is plausible when it opens with a known verb.
bool LooksLikeServePayload(const std::string& payload) {
  for (const char* verb : {"req ", "ping ", "health ", "snapshot "}) {
    if (payload.rfind(verb, 0) == 0) return true;
  }
  return false;
}

std::string Framed(const std::vector<std::string>& payloads) {
  std::ostringstream os;
  for (const std::string& p : payloads) WriteFrame(os, p);
  return os.str();
}

TEST(Framing, WriteThenReadRoundTripsIncludingEmptyPayloads) {
  std::istringstream is(Framed({"req r0\nhello", "", "ping p0"}));
  std::string payload;
  std::string error;
  EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kFrame);
  EXPECT_EQ(payload, "req r0\nhello");
  EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kFrame);
  EXPECT_EQ(payload, "ping p0");
  EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kEof);
}

TEST(Framing, ReadErrorsNameTheMalformation) {
  std::string payload;
  std::string error;
  {
    // Prefix cut short.
    std::istringstream is(std::string("\x05\x00", 2));
    EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kError);
    EXPECT_NE(error.find("truncated frame length prefix"),
              std::string::npos);
  }
  {
    // Payload cut short.
    std::string bytes = Framed({"abcdef"});
    bytes.resize(bytes.size() - 3);
    std::istringstream is(bytes);
    EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kError);
    EXPECT_NE(error.find("truncated frame payload (3 of 6"),
              std::string::npos);
  }
  {
    // Length over the cap is corruption, not a gigantic request.
    std::istringstream is(std::string("\xff\xff\xff\xff", 4));
    EXPECT_EQ(ReadFrame(is, &payload, &error), FrameRead::kError);
    EXPECT_NE(error.find("implausible frame length"), std::string::npos);
  }
}

TEST(Framing, FdHelpersRoundTripThroughAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrameFd(fds[1], "req r0\nqon 3"));
  ASSERT_TRUE(WriteFrameFd(fds[1], ""));
  ::close(fds[1]);
  std::string payload;
  EXPECT_EQ(ReadFrameFd(fds[0], &payload), 1);
  EXPECT_EQ(payload, "req r0\nqon 3");
  EXPECT_EQ(ReadFrameFd(fds[0], &payload), 1);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(ReadFrameFd(fds[0], &payload), 0);  // clean EOF
  ::close(fds[0]);
}

TEST(FrameReaderTest, CleanStreamDeliversWithoutResync) {
  std::istringstream is(Framed({"req a", "ping b", "req c"}));
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  for (const char* want : {"req a", "ping b", "req c"}) {
    ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
    EXPECT_EQ(payload, want);
    EXPECT_FALSE(reader.resynced());
  }
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kEof);
  EXPECT_EQ(reader.total_skipped(), 0u);
  EXPECT_EQ(reader.resync_count(), 0u);
}

TEST(FrameReaderTest, GarbageBetweenFramesIsSkippedAndCounted) {
  // High-bit garbage: no 4-byte window decodes to a plausible length
  // (the top prefix byte puts every candidate over kMaxFrameBytes).
  std::string bytes = Framed({"req a"});
  bytes += "\x81\x93\xa7\xbb\xcf";
  bytes += Framed({"ping b", "req c"});
  std::istringstream is(bytes);
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;

  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "req a");
  EXPECT_FALSE(reader.resynced());

  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "ping b");
  EXPECT_TRUE(reader.resynced());
  EXPECT_EQ(reader.last_skipped(), 5u);

  // The resync flag covers exactly one frame.
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "req c");
  EXPECT_FALSE(reader.resynced());

  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kEof);
  EXPECT_EQ(reader.total_skipped(), 5u);
  EXPECT_EQ(reader.resync_count(), 1u);
}

TEST(FrameReaderTest, ValidatorRejectsEmbeddedFrameShapedGarbage) {
  // Mid-garbage sits a well-formed frame whose payload is not protocol
  // text. Without a validator the reader locks onto it and delivers the
  // noise; with one, it slides past the impostor and finds the real
  // frame. (The validator is only consulted while resyncing — the
  // leading high-bit bytes put the reader into that state.)
  std::string garbage = "\x81\x92\xa3\xb4" + Framed({"zzz"});
  std::string bytes = Framed({"req a"}) + garbage + Framed({"req b"});
  std::string payload;
  std::string error;
  {
    std::istringstream is(bytes);
    FrameReader reader(is, LooksLikeServePayload);
    ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
    EXPECT_EQ(payload, "req a");
    ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
    EXPECT_EQ(payload, "req b");
    EXPECT_TRUE(reader.resynced());
    EXPECT_EQ(reader.last_skipped(), garbage.size());
  }
  {
    std::istringstream is(bytes);
    FrameReader reader(is);  // no validator: the impostor wins
    ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
    ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
    EXPECT_EQ(payload, "zzz");
    EXPECT_EQ(reader.last_skipped(), 4u);
  }
}

TEST(FrameReaderTest, PlausibleOverrunningLengthMidResyncSlidesOnward) {
  // Mid-garbage, one window decodes to ~1 MiB — plausible, but far past
  // the end of the stream. The reader must treat it as more garbage and
  // keep sliding (the overread bytes stay buffered), not report the
  // stream truncated.
  std::string bytes = Framed({"req a"});
  bytes += std::string("\xff\x00\x00\x10\x00", 5);
  bytes += Framed({"req b"});
  std::istringstream is(bytes);
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "req a");
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "req b");
  EXPECT_EQ(reader.last_skipped(), 5u);
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kEof);
}

TEST(FrameReaderTest, CleanStateTruncationIsStillAHardError) {
  std::string bytes = Framed({"req a", "req b"});
  bytes.resize(bytes.size() - 2);  // tear the final payload
  std::istringstream is(bytes);
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kError);
  EXPECT_NE(error.find("truncated frame payload"), std::string::npos);
}

TEST(FrameReaderTest, TrailingGarbageEndsInAResyncError) {
  std::string bytes = Framed({"req a"});
  bytes += "\x81\x93\xa7\xbb";
  std::istringstream is(bytes);
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kError);
  EXPECT_NE(error.find("stream ended while resynchronizing"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fixture replay: the committed byte streams behind the serve
// corrupt-frame regression (tests/run_serve_corrupt_frame.cmake) and the
// fuzz corpus. frames_garbage.bin is frames_valid.bin with 9 bytes of
// high-bit garbage spliced between the first and second frame.

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(AQO_EXAMPLES_DIR) + "/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FrameFixtures, ValidFixtureCarriesThreeCleanFrames) {
  std::istringstream is(ReadFixture("frames_valid.bin"));
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload.rfind("req r0\n", 0), 0u);
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "ping p0");
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload.rfind("req r1\n", 0), 0u);
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kEof);
  EXPECT_EQ(reader.total_skipped(), 0u);
}

TEST(FrameFixtures, GarbageFixtureResyncsOnceAndLosesNoFrames) {
  std::istringstream is(ReadFixture("frames_garbage.bin"));
  FrameReader reader(is, LooksLikeServePayload);
  std::string payload;
  std::string error;
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload.rfind("req r0\n", 0), 0u);
  EXPECT_FALSE(reader.resynced());
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload, "ping p0");
  EXPECT_TRUE(reader.resynced());
  EXPECT_EQ(reader.last_skipped(), 9u);
  ASSERT_EQ(reader.Next(&payload, &error), FrameRead::kFrame) << error;
  EXPECT_EQ(payload.rfind("req r1\n", 0), 0u);
  EXPECT_FALSE(reader.resynced());
  EXPECT_EQ(reader.Next(&payload, &error), FrameRead::kEof);
  EXPECT_EQ(reader.resync_count(), 1u);
}

}  // namespace
}  // namespace aqo
