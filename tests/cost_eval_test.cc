// Differential bit-identity tests for the zero-allocation incremental cost
// evaluators (qo/cost_eval.h) against the naive reference implementations
// QonSequenceCost / OptimalDecomposition. "Bit-identical" is meant
// literally: every comparison below is on the raw bit pattern of the
// LogDouble exponent, never an epsilon. Also holds the regression line for
// the degenerate-size fixes (empty/singleton sequences in the QO_N and
// QO_H cost paths).

#include "qo/cost_eval.h"

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "qo/workloads.h"
#include "util/random.h"

namespace aqo {
namespace {

uint64_t Bits(LogDouble x) { return std::bit_cast<uint64_t>(x.Log2()); }

QonInstance RandomInstance(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng->UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.001, 1.0)));
  }
  return inst;
}

// --- QO_N: full + swap/insert/prefix-change neighborhoods ---------------

TEST(QonCostEvaluator, BitIdenticalToNaiveAcrossNeighborhoods) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(1000 + seed);
    int n = 2 + static_cast<int>(seed % 11);  // n in [2, 12]
    QonInstance inst = RandomInstance(n, rng.UniformReal(0.2, 1.0), &rng);
    QonCostEvaluator eval(inst);

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    ASSERT_EQ(Bits(eval.Cost(seq)), Bits(QonSequenceCost(inst, seq)))
        << "full evaluation, seed=" << seed;

    // Swap neighborhood: CostAfterSwap against a from-scratch naive cost.
    for (int move = 0; move < 4; ++move) {
      int i = static_cast<int>(rng.UniformInt(0, n - 1));
      int j = static_cast<int>(rng.UniformInt(0, n - 1));
      std::swap(seq[static_cast<size_t>(i)], seq[static_cast<size_t>(j)]);
      ASSERT_EQ(Bits(eval.CostAfterSwap(i, j)),
                Bits(QonSequenceCost(inst, seq)))
          << "swap (" << i << "," << j << "), seed=" << seed;
      ASSERT_EQ(eval.sequence(), seq);
    }

    // Insert neighborhood: remove one position, insert elsewhere; the diff
    // scan inside Cost() finds the first changed position itself.
    for (int move = 0; move < 4; ++move) {
      size_t from = static_cast<size_t>(rng.UniformInt(0, n - 1));
      size_t to = static_cast<size_t>(rng.UniformInt(0, n - 1));
      int v = seq[from];
      seq.erase(seq.begin() + static_cast<ptrdiff_t>(from));
      seq.insert(seq.begin() + static_cast<ptrdiff_t>(to), v);
      ASSERT_EQ(Bits(eval.Cost(seq)), Bits(QonSequenceCost(inst, seq)))
          << "insert " << from << "->" << to << ", seed=" << seed;
    }

    // Prefix-change neighborhood: reshuffle the suffix starting at a
    // declared first_changed position and resume explicitly from there.
    for (int move = 0; move < 4; ++move) {
      int k = static_cast<int>(rng.UniformInt(0, n - 1));
      JoinSequence next = seq;
      for (size_t i = seq.size() - 1; i > static_cast<size_t>(k); --i) {
        size_t j = static_cast<size_t>(
            rng.UniformInt(k, static_cast<int64_t>(i)));
        std::swap(next[i], next[j]);
      }
      ASSERT_EQ(Bits(eval.CostWithPrefix(next, k)),
                Bits(QonSequenceCost(inst, next)))
          << "prefix-change at " << k << ", seed=" << seed;
      seq = next;
    }
  }
}

TEST(QonCostEvaluator, DensePrimitivesBitIdenticalToNaiveFolds) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(7000 + seed);
    int n = 2 + static_cast<int>(seed % 11);
    QonInstance inst = RandomInstance(n, rng.UniformReal(0.2, 1.0), &rng);
    QonCostEvaluator eval(inst);

    JoinSequence perm = IdentitySequence(n);
    rng.Shuffle(&perm);
    size_t len = static_cast<size_t>(rng.UniformInt(1, n - 1));
    std::vector<int> prefix(perm.begin(),
                            perm.begin() + static_cast<ptrdiff_t>(len));
    int target = perm[len];

    // min access cost: left-to-right MinOf fold over the prefix.
    LogDouble naive_min = inst.AccessCost(prefix[0], target);
    for (size_t j = 1; j < prefix.size(); ++j) {
      naive_min = MinOf(naive_min, inst.AccessCost(prefix[j], target));
    }
    ASSERT_EQ(Bits(eval.MinAccess(prefix, target)), Bits(naive_min));

    LogDouble seeded_init = inst.size(target);
    LogDouble naive_seeded = seeded_init;
    for (int k : prefix) {
      naive_seeded = MinOf(naive_seeded, inst.AccessCost(k, target));
    }
    ASSERT_EQ(Bits(eval.MinAccessSeeded(seeded_init, prefix, target)),
              Bits(naive_seeded));

    // One constructive extension of the running intermediate size.
    LogDouble intermediate = LogDouble::FromLinear(rng.UniformReal(1.0, 1e6));
    LogDouble naive_ext = intermediate * inst.size(target);
    for (int k : prefix) {
      if (inst.graph().HasEdge(k, target)) {
        naive_ext *= inst.selectivity(k, target);
      }
    }
    ASSERT_EQ(Bits(eval.ExtendSize(intermediate, prefix, target)),
              Bits(naive_ext));

    bool naive_connects = false;
    for (int k : prefix) naive_connects |= inst.graph().HasEdge(k, target);
    ASSERT_EQ(eval.ConnectsTo(prefix, target), naive_connects);
  }
}

TEST(QonCostEvaluator, NaiveToggleInvalidatesAndResumesCorrectly) {
  Rng rng(42);
  QonInstance inst = RandomInstance(8, 0.6, &rng);
  QonCostEvaluator eval(inst);
  JoinSequence seq = IdentitySequence(8);
  rng.Shuffle(&seq);
  ASSERT_EQ(Bits(eval.Cost(seq)), Bits(QonSequenceCost(inst, seq)));
  {
    ScopedNaiveCostEvaluation naive;
    std::swap(seq[1], seq[5]);
    ASSERT_EQ(Bits(eval.Cost(seq)), Bits(QonSequenceCost(inst, seq)));
  }
  // Back on the fast path: the cached state was invalidated inside the
  // scope, so this must rebuild from scratch and still agree.
  std::swap(seq[0], seq[7]);
  ASSERT_EQ(Bits(eval.Cost(seq)), Bits(QonSequenceCost(inst, seq)));
}

// --- QO_H: decomposition DP, counters, and swap neighborhood ------------

TEST(QohCostEvaluator, BitIdenticalToOptimalDecomposition) {
  auto expect_same_plan = [](const QohPlan& got, const QohPlan& want,
                             uint64_t seed, const char* what) {
    ASSERT_EQ(got.feasible, want.feasible) << what << ", seed=" << seed;
    if (want.feasible) {
      ASSERT_EQ(Bits(got.cost), Bits(want.cost)) << what << ", seed=" << seed;
      ASSERT_EQ(got.decomposition.starts, want.decomposition.starts)
          << what << ", seed=" << seed;
    }
  };
  for (uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(3000 + seed);
    int n = 2 + static_cast<int>(seed % 9);  // n in [2, 10]
    // Sweep the memory budget from starved to comfortable so infeasible
    // sequences (and partially reachable DPs) are exercised too.
    double memory_fraction = rng.UniformReal(0.05, 1.2);
    QohInstance inst = RandomQohWorkload(n, &rng, memory_fraction);
    QohCostEvaluator eval(inst);

    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    expect_same_plan(eval.Evaluate(seq), OptimalDecomposition(inst, seq),
                     seed, "full");

    for (int move = 0; move < 5; ++move) {
      size_t a = static_cast<size_t>(rng.UniformInt(0, n - 1));
      size_t b = static_cast<size_t>(rng.UniformInt(0, n - 1));
      std::swap(seq[a], seq[b]);
      expect_same_plan(eval.Evaluate(seq), OptimalDecomposition(inst, seq),
                       seed, "swap");
    }
  }
}

TEST(QohCostEvaluator, ReplaysDecompCountersExactly) {
  auto& reg = obs::Registry::Get();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(5000 + seed);
    int n = 3 + static_cast<int>(seed % 7);
    QohInstance inst = RandomQohWorkload(n, &rng, rng.UniformReal(0.1, 1.0));
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);

    obs::CounterSnapshot b0 = reg.Counters();
    QohPlan naive = OptimalDecomposition(inst, seq);
    obs::CounterSnapshot a0 = reg.Counters();

    QohCostEvaluator eval(inst);
    obs::CounterSnapshot b1 = reg.Counters();
    const QohPlan& fast = eval.Evaluate(seq);
    obs::CounterSnapshot a1 = reg.Counters();

    ASSERT_EQ(obs::Registry::Delta(b0, a0), obs::Registry::Delta(b1, a1))
        << "qoh.decomp.* counter deltas diverged, seed=" << seed;
    ASSERT_EQ(fast.feasible, naive.feasible);

    // A cache-hit on the identical sequence must replay the same logical
    // counter amounts again (the naive path would have recounted them).
    obs::CounterSnapshot b2 = reg.Counters();
    eval.Evaluate(seq);
    obs::CounterSnapshot a2 = reg.Counters();
    ASSERT_EQ(obs::Registry::Delta(b0, a0), obs::Registry::Delta(b2, a2))
        << "cache-hit replay diverged, seed=" << seed;
  }
}

TEST(QohCostEvaluator, DensePrimitiveMatchesNaiveFold) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 3 + trial % 6;
    QohInstance inst = RandomQohWorkload(n, &rng, 0.5);
    QohCostEvaluator eval(inst);
    JoinSequence perm = IdentitySequence(n);
    rng.Shuffle(&perm);
    size_t len = static_cast<size_t>(rng.UniformInt(1, n - 1));
    std::vector<int> prefix(perm.begin(),
                            perm.begin() + static_cast<ptrdiff_t>(len));
    int target = perm[len];
    LogDouble intermediate = LogDouble::FromLinear(rng.UniformReal(1.0, 1e6));
    LogDouble naive_ext = intermediate * inst.size(target);
    for (int k : prefix) {
      if (inst.graph().HasEdge(k, target)) {
        naive_ext *= inst.selectivity(k, target);
      }
    }
    ASSERT_EQ(Bits(eval.ExtendSize(intermediate, prefix, target)),
              Bits(naive_ext));
  }
}

// --- Degenerate sizes (regression: size_t underflow in QonJoinCosts) ----

TEST(DegenerateSequences, QonEmptyInstanceHasZeroCost) {
  // Pre-fix, QonJoinCosts reserved seq.size() - 1 == SIZE_MAX here.
  QonInstance inst(Graph(0), {});
  EXPECT_TRUE(QonJoinCosts(inst, {}).empty());
  EXPECT_TRUE(QonSequenceCost(inst, {}).IsZero());
  EXPECT_EQ(PrefixSizes(inst, {}).size(), 1u);
}

TEST(DegenerateSequences, QonSingletonHasZeroCost) {
  QonInstance inst(Graph(1), {LogDouble::FromLinear(42.0)});
  JoinSequence seq = {0};
  EXPECT_TRUE(QonJoinCosts(inst, seq).empty());
  EXPECT_TRUE(QonSequenceCost(inst, seq).IsZero());
  std::vector<LogDouble> prefix = PrefixSizes(inst, seq);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(Bits(prefix[1]), Bits(LogDouble::FromLinear(42.0)));
}

TEST(DegenerateSequences, QohPrefixSizesOnEmptyAndSingleton) {
  QohInstance empty(Graph(0), {}, /*memory=*/64.0, /*eta=*/0.5);
  EXPECT_EQ(QohPrefixSizes(empty, {}).size(), 1u);

  QohInstance single(Graph(1), {LogDouble::FromLinear(8.0)}, 64.0, 0.5);
  std::vector<LogDouble> prefix = QohPrefixSizes(single, {0});
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(Bits(prefix[0]), Bits(LogDouble::One()));
  EXPECT_EQ(Bits(prefix[1]), Bits(LogDouble::FromLinear(8.0)));
}

}  // namespace
}  // namespace aqo
