// Tests for plan diagnostics and the C_out metric (qo/analysis.h).

#include "qo/analysis.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/optimizers.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qon.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(CostProfile, MatchesJoinCosts) {
  Rng rng(181);
  QonInstance inst = RandomQonWorkload(8, &rng);
  JoinSequence seq = IdentitySequence(8);
  CostProfile profile = ComputeCostProfile(inst, seq);
  std::vector<LogDouble> h = QonJoinCosts(inst, seq);
  ASSERT_EQ(profile.log2_h.size(), h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_DOUBLE_EQ(profile.log2_h[i], h[i].Log2());
  }
  EXPECT_DOUBLE_EQ(profile.log2_h[static_cast<size_t>(profile.peak_index)],
                   *std::max_element(profile.log2_h.begin(),
                                     profile.log2_h.end()));
  EXPECT_GE(profile.log2_sum_over_peak, 0.0);
}

TEST(CostProfile, GapWitnessIsUnimodalWithSmallSumOverPeak) {
  // The Lemma 6 shape, via the diagnostics API.
  Rng rng(182);
  std::vector<int> planted;
  Graph g = CliqueClassGraph(120, 13, 1.0, 80, &rng, &planted);
  QonGapParams params{.c = 2.0 / 3.0, .d = 1.0 / 3.0, .log2_alpha = 4.0};
  QonGapInstance gap = ReduceCliqueToQon(g, params);
  JoinSequence witness = CliqueFirstWitness(g, planted);
  CostProfile profile = ComputeCostProfile(gap.instance, witness);
  EXPECT_NEAR(profile.peak_index + 1, gap.PeakPosition(), 1.5);
  EXPECT_LE(profile.max_rise_violation, 1e-9);   // monotone up to the peak
  EXPECT_LE(profile.max_post_peak_rise, 1e-9);   // monotone after it
  EXPECT_LE(profile.log2_sum_over_peak, params.log2_alpha);  // Lemma 6 sum
}

TEST(PlanToString, MentionsEveryRelationAndTotal) {
  Rng rng(183);
  QonInstance inst = RandomQonWorkload(5, &rng);
  std::string s = PlanToString(inst, {2, 0, 1, 4, 3}, {"a", "b", "c", "d", "e"});
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    EXPECT_NE(s.find(name), std::string::npos) << s;
  }
  EXPECT_NE(s.find("total cost"), std::string::npos);
}

TEST(Cout, HandComputedValue) {
  Graph g = Chain(3);
  QonInstance inst(g, {LogDouble::FromLinear(10.0), LogDouble::FromLinear(20.0),
                       LogDouble::FromLinear(30.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  inst.SetSelectivity(1, 2, LogDouble::FromLinear(0.1));
  // N_2 = 100, N_3 = 300.
  EXPECT_NEAR(CoutSequenceCost(inst, {0, 1, 2}).ToLinear(), 400.0, 1e-9);
}

TEST(Cout, OptimalMatchesBruteForce) {
  Rng rng(184);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 8));
    QonInstance inst = RandomQonWorkload(n, &rng);
    OptimizerResult dp = CoutOptimalJoinOrder(inst);
    // Brute force over permutations.
    JoinSequence seq = IdentitySequence(n);
    LogDouble best = CoutSequenceCost(inst, seq);
    do {
      best = MinOf(best, CoutSequenceCost(inst, seq));
    } while (std::next_permutation(seq.begin(), seq.end()));
    EXPECT_TRUE(dp.cost.ApproxEquals(best, 1e-9)) << "trial=" << trial;
  }
}

TEST(Cout, EqualsHModelOnSingleEdgeIndexedJoins) {
  // With default (perfect index) access costs, a connected sequence whose
  // every join uses exactly one predicate has H_i = N(next prefix):
  // the H cost equals C_out. Trees guarantee the single-predicate part.
  Rng rng(185);
  for (int trial = 0; trial < 20; ++trial) {
    WorkloadOptions options;
    options.shape = WorkloadShape::kTree;
    int n = static_cast<int>(rng.UniformInt(3, 12));
    QonInstance inst = RandomQonWorkload(n, &rng, options);
    OptimizerOptions no_cp;
    no_cp.forbid_cartesian = true;
    OptimizerResult dp = DpQonOptimizer(inst, no_cp);
    ASSERT_TRUE(dp.feasible);
    EXPECT_TRUE(QonSequenceCost(inst, dp.sequence)
                    .ApproxEquals(CoutSequenceCost(inst, dp.sequence), 1e-9));
  }
}

TEST(Cout, ModelsCanDisagreeOnThePlan) {
  // Construct an instance where an expensive access path makes the H-model
  // avoid a join the C_out model loves: star with a huge but
  // ultra-selective dimension.
  Graph g = Star(3);
  QonInstance inst(g, {LogDouble::FromLinear(1000.0),
                       LogDouble::FromLinear(1000000.0),
                       LogDouble::FromLinear(10.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(1e-6));
  inst.SetSelectivity(0, 2, LogDouble::FromLinear(0.1));
  // Force a bad access path for relation 1 (full scan only).
  inst.SetAccessCost(0, 1, LogDouble::FromLinear(1000000.0));
  OptimizerResult h_opt = DpQonOptimizer(inst);
  OptimizerResult c_opt = CoutOptimalJoinOrder(inst);
  ASSERT_TRUE(h_opt.feasible);
  // Under C_out relation 1 is harmless (result shrinks); under H its scan
  // dominates. The plans' H-costs must differ.
  LogDouble h_of_c = QonSequenceCost(inst, c_opt.sequence);
  EXPECT_GE(h_of_c.Log2(), h_opt.cost.Log2() - 1e-9);
}

}  // namespace
}  // namespace aqo
