// Tests for the telemetry subsystem (src/obs): the counter registry, the
// span profiler, the JSON model, and — most importantly — the JSONL
// run-log schema guard: every record the instrumentation emits must
// re-parse and carry the keys docs/observability.md promises. If a key
// here goes missing, downstream tooling reading run-logs breaks; update
// the doc together with this test.

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/runlog.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "qo/optimizers.h"
#include "qo/plan_cache.h"
#include "qo/qon.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "util/log_double.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

// --- Counter registry ------------------------------------------------------

TEST(Metrics, CounterFindOrCreateReturnsStableRef) {
  obs::Counter& a = obs::Registry::Get().GetCounter("test.obs.stable");
  obs::Counter& b = obs::Registry::Get().GetCounter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Increment();
  a.Add(41);
  EXPECT_EQ(b.Value(), 42u);
}

TEST(Metrics, SnapshotRoundTrip) {
  obs::Counter& x = obs::Registry::Get().GetCounter("test.obs.snap.x");
  obs::Counter& y = obs::Registry::Get().GetCounter("test.obs.snap.y");
  x.Reset();
  y.Reset();
  x.Add(7);
  y.Add(9);
  obs::CounterSnapshot snap = obs::Registry::Get().Counters();
  uint64_t seen_x = 0, seen_y = 0;
  for (const auto& [name, value] : snap) {
    if (name == "test.obs.snap.x") seen_x = value;
    if (name == "test.obs.snap.y") seen_y = value;
  }
  EXPECT_EQ(seen_x, 7u);
  EXPECT_EQ(seen_y, 9u);
  // Snapshots come back sorted by name: stable record layout.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST(Metrics, DeltaDropsUnchangedCounters) {
  obs::Counter& moved = obs::Registry::Get().GetCounter("test.obs.delta.moved");
  obs::Counter& still = obs::Registry::Get().GetCounter("test.obs.delta.still");
  moved.Reset();
  still.Reset();
  still.Add(5);
  obs::CounterSnapshot before = obs::Registry::Get().Counters();
  moved.Add(3);
  obs::CounterSnapshot delta =
      obs::Registry::Delta(before, obs::Registry::Get().Counters());
  uint64_t moved_delta = 0;
  for (const auto& [name, value] : delta) {
    EXPECT_NE(name, "test.obs.delta.still");  // zero delta: dropped
    if (name == "test.obs.delta.moved") moved_delta = value;
  }
  EXPECT_EQ(moved_delta, 3u);
}

TEST(Metrics, GaugeHoldsLastValue) {
  obs::Gauge& g = obs::Registry::Get().GetGauge("test.obs.gauge");
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

// --- Span profiler ---------------------------------------------------------

TEST(Span, NestedSpansAggregateByName) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.Reset();
  {
    obs::Span outer("test.outer");
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("test.inner");
    }
    { obs::Span other("test.other"); }
  }
  const obs::ProfileNode* root = profiler.root();
  ASSERT_EQ(root->children.size(), 1u);
  const obs::ProfileNode& outer = *root->children[0];
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 2u);  // 3 "test.inner" merged into one
  EXPECT_EQ(outer.children[0]->name, "test.inner");
  EXPECT_EQ(outer.children[0]->count, 3u);
  EXPECT_EQ(outer.children[1]->name, "test.other");
  EXPECT_EQ(outer.children[1]->count, 1u);
  EXPECT_GE(outer.total_seconds, outer.children[0]->total_seconds);
  profiler.Reset();
}

// --- JSON model ------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  obs::JsonValue rec = obs::JsonValue::Object();
  rec["name"] = "qon.dp";
  rec["n"] = 42;
  rec["big"] = uint64_t{18446744073709551615ull};
  rec["ratio"] = 0.1;
  rec["ok"] = true;
  rec["missing"] = obs::JsonValue();
  obs::JsonValue arr = obs::JsonValue::Array();
  arr.Push(1);
  arr.Push("two\n\"quoted\"");
  rec["items"] = arr;

  std::string line = rec.Dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // JSONL-safe
  auto parsed = obs::JsonValue::Parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("name")->AsString(), "qon.dp");
  EXPECT_EQ(parsed->Find("n")->AsInt(), 42);
  EXPECT_EQ(parsed->Find("big")->AsUint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed->Find("ratio")->AsDouble(), 0.1);
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_TRUE(parsed->Find("missing")->is_null());
  ASSERT_EQ(parsed->Find("items")->size(), 2u);
  EXPECT_EQ(parsed->Find("items")->items()[1].AsString(), "two\n\"quoted\"");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::Parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("{}trailing").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("{'single':1}").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]").has_value());
  EXPECT_TRUE(obs::JsonValue::Parse(" {\"a\": [1, 2]} ").has_value());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  obs::JsonValue rec = obs::JsonValue::Object();
  rec["nan"] = std::nan("");
  EXPECT_EQ(rec.Dump(), "{\"nan\":null}");
}

// --- Run-log schema guard --------------------------------------------------

QonInstance SmallInstance() {
  Graph g = Graph::Complete(5);
  std::vector<LogDouble> sizes(5, LogDouble::FromLinear(1000.0));
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

std::vector<obs::JsonValue> EmitAndParse() {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::RunLog::Global()->WriteHeader("obs_test", 123, {"--quick=1"});
  QonInstance inst = SmallInstance();
  obs::InstanceShape shape{.family = "qon",
                           .kind = "complete",
                           .side = "",
                           .source = "",
                           .n = inst.NumRelations(),
                           .edges = inst.graph().NumEdges()};
  // Through the registry (not DpQonOptimizer directly) so the invocation
  // also records qon.dp.invoke_us — the schema guard below asserts the
  // record's "histograms" key attributes it.
  OptimizerResult result = obs::InstrumentedRun("qon.dp", shape, [&] {
    return OptimizerRegistry::Qon().Run("dp", inst, {}, nullptr);
  });
  obs::RunLog::CloseGlobal();
  EXPECT_TRUE(result.feasible);

  std::vector<obs::JsonValue> records;
  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = obs::JsonValue::Parse(line);
    EXPECT_TRUE(parsed.has_value()) << "unparseable JSONL line: " << line;
    if (parsed.has_value()) records.push_back(std::move(*parsed));
  }
  return records;
}

TEST(RunLog, HeaderCarriesProvenance) {
  std::vector<obs::JsonValue> records = EmitAndParse();
  ASSERT_GE(records.size(), 1u);
  const obs::JsonValue& header = records[0];
  EXPECT_EQ(header.Find("type")->AsString(), "run_header");
  EXPECT_EQ(header.Find("schema_version")->AsInt(), obs::kRunLogSchemaVersion);
  EXPECT_EQ(header.Find("binary")->AsString(), "obs_test");
  EXPECT_EQ(header.Find("seed")->AsUint(), 123u);
  ASSERT_TRUE(header.Has("args"));
  ASSERT_EQ(header.Find("args")->size(), 1u);
  const obs::JsonValue* prov = header.Find("provenance");
  ASSERT_NE(prov, nullptr);
  for (const char* key :
       {"git_sha", "compiler", "build_type", "hostname", "timestamp_utc"}) {
    ASSERT_TRUE(prov->Has(key)) << "provenance missing " << key;
    EXPECT_FALSE(prov->Find(key)->AsString().empty()) << key;
  }
}

// The contract from ISSUE/docs: every optimizer invocation can emit a
// record with the optimizer name, instance size, cost (log2), evaluation
// count, wall time, and at least two optimizer-specific counters.
TEST(RunLog, OptimizerRunRecordSchema) {
  std::vector<obs::JsonValue> records = EmitAndParse();
  ASSERT_GE(records.size(), 2u);
  const obs::JsonValue& run = records[1];
  EXPECT_EQ(run.Find("type")->AsString(), "optimizer_run");
  EXPECT_EQ(run.Find("optimizer")->AsString(), "qon.dp");

  const obs::JsonValue* inst = run.Find("instance");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->Find("family")->AsString(), "qon");
  EXPECT_EQ(inst->Find("n")->AsInt(), 5);
  EXPECT_EQ(inst->Find("edges")->AsInt(), 10);
  EXPECT_TRUE(inst->Has("kind"));
  EXPECT_TRUE(inst->Has("side"));
  EXPECT_TRUE(inst->Has("source"));

  EXPECT_TRUE(run.Find("feasible")->AsBool());
  ASSERT_TRUE(run.Has("cost_log2"));
  EXPECT_TRUE(run.Find("cost_log2")->is_number());
  EXPECT_GT(run.Find("cost_log2")->AsDouble(), 0.0);
  EXPECT_GT(run.Find("evaluations")->AsUint(), 0u);
  EXPECT_GE(run.Find("wall_seconds")->AsDouble(), 0.0);

  // >= 2 optimizer-specific counters attributed to this invocation.
  const obs::JsonValue* counters = run.Find("counters");
  ASSERT_NE(counters, nullptr);
  int optimizer_specific = 0;
  for (const auto& [name, value] : counters->members()) {
    if (name.rfind("qon.dp.", 0) == 0) {
      ++optimizer_specific;
      EXPECT_GT(value.AsUint(), 0u) << name;
    }
  }
  EXPECT_GE(optimizer_specific, 2) << "DP run must attribute its own "
                                      "counters (qon.dp.*) to the record";

  // The "histograms" key is always present and attributes the registry's
  // per-invocation latency distribution to this record.
  const obs::JsonValue* histograms = run.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const obs::JsonValue* invoke = histograms->Find("qon.dp.invoke_us");
  ASSERT_NE(invoke, nullptr)
      << "registry-run invocation must attribute qon.dp.invoke_us";
  for (const char* key : {"count", "sum_us", "min_us", "max_us", "p50_us",
                          "p90_us", "p99_us", "p999_us"}) {
    ASSERT_TRUE(invoke->Has(key)) << "histogram summary missing " << key;
    EXPECT_TRUE(invoke->Find(key)->is_number()) << key;
  }
  EXPECT_EQ(invoke->Find("count")->AsUint(), 1u);
  EXPECT_GE(invoke->Find("p99_us")->AsUint(), invoke->Find("p50_us")->AsUint());
  EXPECT_GE(invoke->Find("max_us")->AsUint(), invoke->Find("min_us")->AsUint());

  ASSERT_TRUE(run.Has("spans"));
}

TEST(RunLog, InfeasibleRunSerializesNullCost) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::InstanceShape shape{.family = "qon", .kind = "t", .side = "",
                           .source = "", .n = 1, .edges = 0};
  struct FakeResult {
    bool feasible = false;
    LogDouble cost;
    uint64_t evaluations = 0;
  };
  obs::InstrumentedRun("qon.fake", shape, [] { return FakeResult{}; });
  obs::RunLog::CloseGlobal();
  auto parsed = obs::JsonValue::Parse(sink.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->Find("feasible")->AsBool());
  EXPECT_TRUE(parsed->Find("cost_log2")->is_null());
}

TEST(RunLog, InstrumentedRunIsPassthroughWithoutGlobalLog) {
  ASSERT_EQ(obs::RunLog::Global(), nullptr);
  QonInstance inst = SmallInstance();
  obs::InstanceShape shape{.family = "qon", .kind = "complete", .side = "",
                           .source = "", .n = 5, .edges = 10};
  OptimizerResult direct = GreedyQonOptimizer(inst);
  OptimizerResult wrapped = obs::InstrumentedRun(
      "qon.greedy", shape, [&] { return GreedyQonOptimizer(inst); });
  EXPECT_EQ(wrapped.feasible, direct.feasible);
  EXPECT_DOUBLE_EQ(wrapped.cost.Log2(), direct.cost.Log2());
}

// --- Per-thread counter attribution ----------------------------------------

TEST(ThreadCounterTally, AttributesOnlyTheCallingThreadsIncrements) {
  obs::Counter& counter =
      obs::Registry::Get().GetCounter("test.tally.concurrent");
  // Pool workers hammer the same global counter while this thread's tally
  // is open; the tally must see exactly this thread's increments.
  ThreadPool pool(4);
  obs::ThreadCounterTally tally;
  pool.ParallelForChunks(400, [&](int /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counter.Increment();
  });
  auto snapshot = tally.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "test.tally.concurrent");
  // Chunk 0 always runs on the submitting thread: 100 of the 400.
  EXPECT_EQ(snapshot[0].second, 100u);
}

TEST(ThreadCounterTally, NestedTallyFoldsIntoParent) {
  obs::Counter& counter = obs::Registry::Get().GetCounter("test.tally.nested");
  obs::ThreadCounterTally outer;
  counter.Add(3);
  {
    obs::ThreadCounterTally inner;
    counter.Add(7);
    auto inner_snapshot = inner.Snapshot();
    ASSERT_EQ(inner_snapshot.size(), 1u);
    EXPECT_EQ(inner_snapshot[0].second, 7u);
  }
  auto outer_snapshot = outer.Snapshot();
  ASSERT_EQ(outer_snapshot.size(), 1u);
  EXPECT_EQ(outer_snapshot[0].second, 10u);  // own 3 + folded inner 7
}

// --- Run-log buffering for sweep-order stability ----------------------------

TEST(RunLogBuffer, CapturesAndReplaysInCallerChosenOrder) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::RunLog* log = obs::RunLog::Global();
  ASSERT_NE(log, nullptr);

  auto record = [](int cell) {
    obs::JsonValue v = obs::JsonValue::Object();
    v["cell"] = cell;
    return v;
  };

  // Capture two cells out of order, replay them in cell order — the
  // SweepRunner pattern.
  std::string cell1;
  {
    obs::RunLogBuffer buffer;
    log->Write(record(1));
    cell1 = buffer.Take();
  }
  std::string cell0;
  {
    obs::RunLogBuffer buffer;
    log->Write(record(0));
    cell0 = buffer.Take();
  }
  EXPECT_EQ(sink.str(), "");  // nothing reached the stream yet
  log->WriteRaw(cell0);
  log->WriteRaw(cell1);
  obs::RunLog::CloseGlobal();

  EXPECT_EQ(sink.str(), "{\"cell\":0}\n{\"cell\":1}\n");
}

TEST(RunLogBuffer, UntakenLinesAreDiscardedAtScopeExit) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  {
    obs::RunLogBuffer buffer;
    obs::RunLog::Global()->Write(obs::JsonValue::Object());
  }
  obs::RunLog::CloseGlobal();
  EXPECT_EQ(sink.str(), "");
}

// --- Latency histograms -----------------------------------------------------

TEST(Histogram, BucketBoundsRoundTrip) {
  // Every value must land in a bucket whose [lower, upper] range contains
  // it, bucket indexes must be monotone in the value, and the top of the
  // u64 range must still fit.
  std::vector<uint64_t> probes = {0,     1,     15,    16,
                                  17,    31,    32,    33,
                                  255,   256,   1000,  65535,
                                  65536, uint64_t{1} << 30,
                                  uint64_t{1} << 62, ~uint64_t{0}};
  uint32_t prev_index = 0;
  for (uint64_t v : probes) {
    uint32_t index = obs::Histogram::BucketIndex(v);
    ASSERT_LT(index, obs::Histogram::kNumBuckets) << v;
    EXPECT_LE(obs::Histogram::BucketLowerBound(index), v) << v;
    EXPECT_GE(obs::Histogram::BucketUpperBound(index), v) << v;
    EXPECT_GE(index, prev_index) << v;  // probes ascend, so must indexes
    prev_index = index;
  }
  // Values below kSubBuckets are exact: one value per bucket.
  for (uint64_t v = 0; v < obs::Histogram::kSubBuckets; ++v) {
    uint32_t index = obs::Histogram::BucketIndex(v);
    EXPECT_EQ(obs::Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(obs::Histogram::BucketUpperBound(index), v);
  }
}

TEST(Histogram, BucketRelativeErrorIsBounded) {
  // Bucket width <= lower_bound / kSubBuckets: the documented <= 6.25%
  // relative error with 16 sub-buckets.
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Next() >> (rng.Next() % 50);
    if (v < obs::Histogram::kSubBuckets) continue;
    uint32_t index = obs::Histogram::BucketIndex(v);
    uint64_t lo = obs::Histogram::BucketLowerBound(index);
    uint64_t hi = obs::Histogram::BucketUpperBound(index);
    EXPECT_LE(hi - lo + 1, lo / obs::Histogram::kSubBuckets + 1) << v;
  }
}

TEST(Histogram, SnapshotTotalsAndExtrema) {
  obs::Histogram& h = obs::Registry::Get().GetHistogram("test.hist.totals_us");
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
  for (uint64_t v : {7u, 100u, 100u, 5000u}) h.Record(v);
  obs::HistogramData data = h.Snapshot();
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 5207u);
  EXPECT_EQ(data.min, 7u);
  EXPECT_EQ(data.max, 5000u);
  // Sparse buckets are index-sorted with counts matching the totals.
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < data.buckets.size(); ++i) {
    if (i > 0) EXPECT_LT(data.buckets[i - 1].first, data.buckets[i].first);
    bucket_total += data.buckets[i].second;
  }
  EXPECT_EQ(bucket_total, 4u);
  h.Reset();
}

TEST(Histogram, QuantilesTrackExactPercentiles) {
  // The histogram quantile must stay within one bucket's relative error
  // of SampleSet's exact order statistics over a skewed random stream.
  obs::Histogram& h =
      obs::Registry::Get().GetHistogram("test.hist.quantiles_us");
  h.Reset();
  SampleSet exact;
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish latencies from sub-us to ~1s.
    uint64_t v = rng.Next() % (uint64_t{1} << (4 + rng.Next() % 16));
    h.Record(v);
    exact.Add(static_cast<double>(v));
  }
  obs::HistogramData data = h.Snapshot();
  ASSERT_EQ(data.count, 20000u);
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    double approx = static_cast<double>(data.Quantile(q));
    double truth = exact.Percentile(q * 100.0);
    // Upper bucket bound: never below the true order statistic by more
    // than interpolation slack, never above it by more than one bucket
    // width (1/16 relative).
    EXPECT_GE(approx, truth * (1.0 - 1.0 / 16.0) - 1.0) << q;
    EXPECT_LE(approx, truth * (1.0 + 1.0 / 16.0) + 1.0) << q;
  }
  EXPECT_EQ(data.Quantile(0.0), data.min);
  EXPECT_EQ(data.Quantile(1.0), data.max);
  h.Reset();
}

TEST(Histogram, MergeEqualsRecordingBothStreams) {
  obs::Histogram& a = obs::Registry::Get().GetHistogram("test.hist.merge_a");
  obs::Histogram& b = obs::Registry::Get().GetHistogram("test.hist.merge_b");
  obs::Histogram& both = obs::Registry::Get().GetHistogram("test.hist.merge_ab");
  a.Reset();
  b.Reset();
  both.Reset();
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Next() % 100000;
    ((i % 2 == 0) ? a : b).Record(v);
    both.Record(v);
  }
  obs::HistogramData merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged, both.Snapshot());
  // Merging an empty snapshot is the identity, both ways.
  obs::HistogramData empty;
  obs::HistogramData copy = merged;
  copy.Merge(empty);
  EXPECT_EQ(copy, merged);
  empty.Merge(merged);
  EXPECT_EQ(empty, merged);
  a.Reset();
  b.Reset();
  both.Reset();
}

TEST(Histogram, SnapshotIsIdenticalAcrossThreadCounts) {
  // The recorded distribution is a pure function of the value stream:
  // fanning the same 4000 records across 1, 2 or 4 workers must yield
  // bit-identical snapshots (relaxed increments commute).
  obs::HistogramData reference;
  for (int threads : {1, 2, 4}) {
    obs::Histogram& h =
        obs::Registry::Get().GetHistogram("test.hist.threads_us");
    h.Reset();
    ThreadPool pool(threads);
    pool.ParallelFor(4000, [&](size_t i) {
      h.Record((i * 2654435761u) % 1000000);
    });
    obs::HistogramData data = h.Snapshot();
    if (threads == 1) {
      reference = data;
    } else {
      EXPECT_EQ(data, reference) << "threads=" << threads;
    }
  }
  obs::Registry::Get().GetHistogram("test.hist.threads_us").Reset();
}

TEST(Histogram, RegistrySnapshotIsNameSortedAndStable) {
  obs::Histogram& h1 = obs::Registry::Get().GetHistogram("test.hist.reg_a");
  obs::Histogram& h2 = obs::Registry::Get().GetHistogram("test.hist.reg_a");
  EXPECT_EQ(&h1, &h2);  // find-or-create returns stable refs
  obs::HistogramSnapshot snap = obs::Registry::Get().Histograms();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST(ThreadHistogramTally, AttributesOnlyTheCallingThreadsRecords) {
  obs::Histogram& h =
      obs::Registry::Get().GetHistogram("test.hist.tally_us");
  h.Reset();
  ThreadPool pool(4);
  obs::ThreadHistogramTally tally;
  pool.ParallelForChunks(400, [&](int /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) h.Record(i % 50);
  });
  auto snapshot = tally.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "test.hist.tally_us");
  // Chunk 0 always runs on the submitting thread: 100 of the 400.
  EXPECT_EQ(snapshot[0].second.count, 100u);
  // The global histogram saw all 400 regardless.
  EXPECT_EQ(h.Snapshot().count, 400u);
  h.Reset();
}

TEST(ThreadHistogramTally, NestedTallyFoldsIntoParent) {
  obs::Histogram& h =
      obs::Registry::Get().GetHistogram("test.hist.tally_nested_us");
  h.Reset();
  obs::ThreadHistogramTally outer;
  h.Record(10);
  {
    obs::ThreadHistogramTally inner;
    h.Record(200);
    h.Record(300);
    auto inner_snapshot = inner.Snapshot();
    ASSERT_EQ(inner_snapshot.size(), 1u);
    EXPECT_EQ(inner_snapshot[0].second.count, 2u);
    EXPECT_EQ(inner_snapshot[0].second.min, 200u);
  }
  auto outer_snapshot = outer.Snapshot();
  ASSERT_EQ(outer_snapshot.size(), 1u);
  const obs::HistogramData& data = outer_snapshot[0].second;
  EXPECT_EQ(data.count, 3u);  // own 1 + folded inner 2
  EXPECT_EQ(data.sum, 510u);
  EXPECT_EQ(data.min, 10u);
  EXPECT_EQ(data.max, 300u);
}

// --- Trace-event export -----------------------------------------------------

// Parses a recorder's output and returns the traceEvents array.
std::vector<obs::JsonValue> TraceEventsOf(const std::string& text) {
  auto parsed = obs::JsonValue::Parse(text);
  EXPECT_TRUE(parsed.has_value()) << "trace output is not valid JSON";
  std::vector<obs::JsonValue> events;
  if (!parsed.has_value()) return events;
  const obs::JsonValue* list = parsed->Find("traceEvents");
  EXPECT_NE(list, nullptr);
  if (list != nullptr) {
    for (const obs::JsonValue& e : list->items()) events.push_back(e);
  }
  return events;
}

TEST(Trace, DisarmedSpansEmitNothing) {
  ASSERT_FALSE(obs::TraceEventRecorder::Armed());
  {
    obs::TraceSpan slice("test.trace.unarmed");
    slice.Annotate("ignored", true);
  }
  { obs::Span span("test.trace.unarmed_profile"); }
  obs::Profiler::Get().Reset();
  // Arming afterwards must not surface the events recorded above.
  std::ostringstream sink;
  obs::TraceEventRecorder::AttachGlobal(&sink);
  obs::TraceEventRecorder::CloseGlobal();
  EXPECT_TRUE(TraceEventsOf(sink.str()).empty());
}

TEST(Trace, SpansAndSlicesBecomeCompleteEvents) {
  std::ostringstream sink;
  obs::TraceEventRecorder::AttachGlobal(&sink);
  ASSERT_TRUE(obs::TraceEventRecorder::Armed());
  {
    obs::Span profiled("test.trace.profiled");
    obs::TraceSpan slice("test.trace.slice", "testing");
    slice.Annotate("cache_hit", true);
    slice.Annotate("fingerprint", std::string_view("deadbeef"));
    slice.Annotate("items", uint64_t{3});
  }
  obs::Profiler::Get().Reset();
  obs::TraceEventRecorder::CloseGlobal();
  ASSERT_FALSE(obs::TraceEventRecorder::Armed());

  std::vector<obs::JsonValue> events = TraceEventsOf(sink.str());
  ASSERT_EQ(events.size(), 2u);
  for (const obs::JsonValue& e : events) {
    EXPECT_EQ(e.Find("ph")->AsString(), "X");  // complete events only
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
  }
  // Sorted by start time: the enclosing profiled span opened first.
  EXPECT_EQ(events[0].Find("name")->AsString(), "test.trace.profiled");
  EXPECT_EQ(events[0].Find("cat")->AsString(), "span");
  const obs::JsonValue& slice = events[1];
  EXPECT_EQ(slice.Find("name")->AsString(), "test.trace.slice");
  EXPECT_EQ(slice.Find("cat")->AsString(), "testing");
  const obs::JsonValue* args = slice.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_TRUE(args->Find("cache_hit")->AsBool());
  EXPECT_EQ(args->Find("fingerprint")->AsString(), "deadbeef");
  EXPECT_EQ(args->Find("items")->AsUint(), 3u);
}

TEST(Trace, ServiceEmitsOneItemSlicePerBatchItem) {
  // The acceptance contract: with tracing armed, a batch of N instances
  // yields exactly N "qo.service.item" slices — computed misses from the
  // compute loop, hits and duplicates from the resolve loop.
  QonInstance base = SmallInstance();
  std::vector<QonInstance> batch = {base, base, base, base, base};
  PlanCacheOptions cache_options;
  PlanCache cache(cache_options);
  BatchOptions options;
  options.optimizer = "greedy";
  options.cache = &cache;

  std::ostringstream sink;
  obs::TraceEventRecorder::AttachGlobal(&sink);
  std::vector<QonBatchItem> items = OptimizeQonBatch(batch, options);
  obs::TraceEventRecorder::CloseGlobal();
  ASSERT_EQ(items.size(), batch.size());

  size_t item_slices = 0;
  bool saw_computed = false, saw_served = false;
  for (const obs::JsonValue& e : TraceEventsOf(sink.str())) {
    if (e.Find("name")->AsString() != "qo.service.item") continue;
    ++item_slices;
    const obs::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->Find("fingerprint")->AsString().size(), 32u);
    EXPECT_TRUE(args->Has("status"));
    (args->Find("cache_hit")->AsBool() ? saw_served : saw_computed) = true;
  }
  EXPECT_EQ(item_slices, batch.size());
  EXPECT_TRUE(saw_computed);  // first occurrence computed
  EXPECT_TRUE(saw_served);    // the four duplicates served from the rep
}

// --- Profiler misuse guard --------------------------------------------------

TEST(ProfilerDeathTest, ResetWithOpenSpansAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        obs::Span open("test.profiler.open");
        obs::Profiler::Get().Reset();
      },
      "Profiler::Reset with open spans");
}

}  // namespace
}  // namespace aqo
