// Tests for the telemetry subsystem (src/obs): the counter registry, the
// span profiler, the JSON model, and — most importantly — the JSONL
// run-log schema guard: every record the instrumentation emits must
// re-parse and carry the keys docs/observability.md promises. If a key
// here goes missing, downstream tooling reading run-logs breaks; update
// the doc together with this test.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/runlog.h"
#include "obs/span.h"
#include "qo/optimizers.h"
#include "qo/qon.h"
#include "util/log_double.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

// --- Counter registry ------------------------------------------------------

TEST(Metrics, CounterFindOrCreateReturnsStableRef) {
  obs::Counter& a = obs::Registry::Get().GetCounter("test.obs.stable");
  obs::Counter& b = obs::Registry::Get().GetCounter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Increment();
  a.Add(41);
  EXPECT_EQ(b.Value(), 42u);
}

TEST(Metrics, SnapshotRoundTrip) {
  obs::Counter& x = obs::Registry::Get().GetCounter("test.obs.snap.x");
  obs::Counter& y = obs::Registry::Get().GetCounter("test.obs.snap.y");
  x.Reset();
  y.Reset();
  x.Add(7);
  y.Add(9);
  obs::CounterSnapshot snap = obs::Registry::Get().Counters();
  uint64_t seen_x = 0, seen_y = 0;
  for (const auto& [name, value] : snap) {
    if (name == "test.obs.snap.x") seen_x = value;
    if (name == "test.obs.snap.y") seen_y = value;
  }
  EXPECT_EQ(seen_x, 7u);
  EXPECT_EQ(seen_y, 9u);
  // Snapshots come back sorted by name: stable record layout.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST(Metrics, DeltaDropsUnchangedCounters) {
  obs::Counter& moved = obs::Registry::Get().GetCounter("test.obs.delta.moved");
  obs::Counter& still = obs::Registry::Get().GetCounter("test.obs.delta.still");
  moved.Reset();
  still.Reset();
  still.Add(5);
  obs::CounterSnapshot before = obs::Registry::Get().Counters();
  moved.Add(3);
  obs::CounterSnapshot delta =
      obs::Registry::Delta(before, obs::Registry::Get().Counters());
  uint64_t moved_delta = 0;
  for (const auto& [name, value] : delta) {
    EXPECT_NE(name, "test.obs.delta.still");  // zero delta: dropped
    if (name == "test.obs.delta.moved") moved_delta = value;
  }
  EXPECT_EQ(moved_delta, 3u);
}

TEST(Metrics, GaugeHoldsLastValue) {
  obs::Gauge& g = obs::Registry::Get().GetGauge("test.obs.gauge");
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

// --- Span profiler ---------------------------------------------------------

TEST(Span, NestedSpansAggregateByName) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.Reset();
  {
    obs::Span outer("test.outer");
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("test.inner");
    }
    { obs::Span other("test.other"); }
  }
  const obs::ProfileNode* root = profiler.root();
  ASSERT_EQ(root->children.size(), 1u);
  const obs::ProfileNode& outer = *root->children[0];
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 2u);  // 3 "test.inner" merged into one
  EXPECT_EQ(outer.children[0]->name, "test.inner");
  EXPECT_EQ(outer.children[0]->count, 3u);
  EXPECT_EQ(outer.children[1]->name, "test.other");
  EXPECT_EQ(outer.children[1]->count, 1u);
  EXPECT_GE(outer.total_seconds, outer.children[0]->total_seconds);
  profiler.Reset();
}

// --- JSON model ------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  obs::JsonValue rec = obs::JsonValue::Object();
  rec["name"] = "qon.dp";
  rec["n"] = 42;
  rec["big"] = uint64_t{18446744073709551615ull};
  rec["ratio"] = 0.1;
  rec["ok"] = true;
  rec["missing"] = obs::JsonValue();
  obs::JsonValue arr = obs::JsonValue::Array();
  arr.Push(1);
  arr.Push("two\n\"quoted\"");
  rec["items"] = arr;

  std::string line = rec.Dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // JSONL-safe
  auto parsed = obs::JsonValue::Parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("name")->AsString(), "qon.dp");
  EXPECT_EQ(parsed->Find("n")->AsInt(), 42);
  EXPECT_EQ(parsed->Find("big")->AsUint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed->Find("ratio")->AsDouble(), 0.1);
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_TRUE(parsed->Find("missing")->is_null());
  ASSERT_EQ(parsed->Find("items")->size(), 2u);
  EXPECT_EQ(parsed->Find("items")->items()[1].AsString(), "two\n\"quoted\"");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::Parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("{}trailing").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("{'single':1}").has_value());
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]").has_value());
  EXPECT_TRUE(obs::JsonValue::Parse(" {\"a\": [1, 2]} ").has_value());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  obs::JsonValue rec = obs::JsonValue::Object();
  rec["nan"] = std::nan("");
  EXPECT_EQ(rec.Dump(), "{\"nan\":null}");
}

// --- Run-log schema guard --------------------------------------------------

QonInstance SmallInstance() {
  Graph g = Graph::Complete(5);
  std::vector<LogDouble> sizes(5, LogDouble::FromLinear(1000.0));
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

std::vector<obs::JsonValue> EmitAndParse() {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::RunLog::Global()->WriteHeader("obs_test", 123, {"--quick=1"});
  QonInstance inst = SmallInstance();
  obs::InstanceShape shape{.family = "qon",
                           .kind = "complete",
                           .side = "",
                           .source = "",
                           .n = inst.NumRelations(),
                           .edges = inst.graph().NumEdges()};
  OptimizerResult result = obs::InstrumentedRun(
      "qon.dp", shape, [&] { return DpQonOptimizer(inst); });
  obs::RunLog::CloseGlobal();
  EXPECT_TRUE(result.feasible);

  std::vector<obs::JsonValue> records;
  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = obs::JsonValue::Parse(line);
    EXPECT_TRUE(parsed.has_value()) << "unparseable JSONL line: " << line;
    if (parsed.has_value()) records.push_back(std::move(*parsed));
  }
  return records;
}

TEST(RunLog, HeaderCarriesProvenance) {
  std::vector<obs::JsonValue> records = EmitAndParse();
  ASSERT_GE(records.size(), 1u);
  const obs::JsonValue& header = records[0];
  EXPECT_EQ(header.Find("type")->AsString(), "run_header");
  EXPECT_EQ(header.Find("schema_version")->AsInt(), obs::kRunLogSchemaVersion);
  EXPECT_EQ(header.Find("binary")->AsString(), "obs_test");
  EXPECT_EQ(header.Find("seed")->AsUint(), 123u);
  ASSERT_TRUE(header.Has("args"));
  ASSERT_EQ(header.Find("args")->size(), 1u);
  const obs::JsonValue* prov = header.Find("provenance");
  ASSERT_NE(prov, nullptr);
  for (const char* key :
       {"git_sha", "compiler", "build_type", "hostname", "timestamp_utc"}) {
    ASSERT_TRUE(prov->Has(key)) << "provenance missing " << key;
    EXPECT_FALSE(prov->Find(key)->AsString().empty()) << key;
  }
}

// The contract from ISSUE/docs: every optimizer invocation can emit a
// record with the optimizer name, instance size, cost (log2), evaluation
// count, wall time, and at least two optimizer-specific counters.
TEST(RunLog, OptimizerRunRecordSchema) {
  std::vector<obs::JsonValue> records = EmitAndParse();
  ASSERT_GE(records.size(), 2u);
  const obs::JsonValue& run = records[1];
  EXPECT_EQ(run.Find("type")->AsString(), "optimizer_run");
  EXPECT_EQ(run.Find("optimizer")->AsString(), "qon.dp");

  const obs::JsonValue* inst = run.Find("instance");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->Find("family")->AsString(), "qon");
  EXPECT_EQ(inst->Find("n")->AsInt(), 5);
  EXPECT_EQ(inst->Find("edges")->AsInt(), 10);
  EXPECT_TRUE(inst->Has("kind"));
  EXPECT_TRUE(inst->Has("side"));
  EXPECT_TRUE(inst->Has("source"));

  EXPECT_TRUE(run.Find("feasible")->AsBool());
  ASSERT_TRUE(run.Has("cost_log2"));
  EXPECT_TRUE(run.Find("cost_log2")->is_number());
  EXPECT_GT(run.Find("cost_log2")->AsDouble(), 0.0);
  EXPECT_GT(run.Find("evaluations")->AsUint(), 0u);
  EXPECT_GE(run.Find("wall_seconds")->AsDouble(), 0.0);

  // >= 2 optimizer-specific counters attributed to this invocation.
  const obs::JsonValue* counters = run.Find("counters");
  ASSERT_NE(counters, nullptr);
  int optimizer_specific = 0;
  for (const auto& [name, value] : counters->members()) {
    if (name.rfind("qon.dp.", 0) == 0) {
      ++optimizer_specific;
      EXPECT_GT(value.AsUint(), 0u) << name;
    }
  }
  EXPECT_GE(optimizer_specific, 2) << "DP run must attribute its own "
                                      "counters (qon.dp.*) to the record";

  ASSERT_TRUE(run.Has("spans"));
}

TEST(RunLog, InfeasibleRunSerializesNullCost) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::InstanceShape shape{.family = "qon", .kind = "t", .side = "",
                           .source = "", .n = 1, .edges = 0};
  struct FakeResult {
    bool feasible = false;
    LogDouble cost;
    uint64_t evaluations = 0;
  };
  obs::InstrumentedRun("qon.fake", shape, [] { return FakeResult{}; });
  obs::RunLog::CloseGlobal();
  auto parsed = obs::JsonValue::Parse(sink.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->Find("feasible")->AsBool());
  EXPECT_TRUE(parsed->Find("cost_log2")->is_null());
}

TEST(RunLog, InstrumentedRunIsPassthroughWithoutGlobalLog) {
  ASSERT_EQ(obs::RunLog::Global(), nullptr);
  QonInstance inst = SmallInstance();
  obs::InstanceShape shape{.family = "qon", .kind = "complete", .side = "",
                           .source = "", .n = 5, .edges = 10};
  OptimizerResult direct = GreedyQonOptimizer(inst);
  OptimizerResult wrapped = obs::InstrumentedRun(
      "qon.greedy", shape, [&] { return GreedyQonOptimizer(inst); });
  EXPECT_EQ(wrapped.feasible, direct.feasible);
  EXPECT_DOUBLE_EQ(wrapped.cost.Log2(), direct.cost.Log2());
}

// --- Per-thread counter attribution ----------------------------------------

TEST(ThreadCounterTally, AttributesOnlyTheCallingThreadsIncrements) {
  obs::Counter& counter =
      obs::Registry::Get().GetCounter("test.tally.concurrent");
  // Pool workers hammer the same global counter while this thread's tally
  // is open; the tally must see exactly this thread's increments.
  ThreadPool pool(4);
  obs::ThreadCounterTally tally;
  pool.ParallelForChunks(400, [&](int /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counter.Increment();
  });
  auto snapshot = tally.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "test.tally.concurrent");
  // Chunk 0 always runs on the submitting thread: 100 of the 400.
  EXPECT_EQ(snapshot[0].second, 100u);
}

TEST(ThreadCounterTally, NestedTallyFoldsIntoParent) {
  obs::Counter& counter = obs::Registry::Get().GetCounter("test.tally.nested");
  obs::ThreadCounterTally outer;
  counter.Add(3);
  {
    obs::ThreadCounterTally inner;
    counter.Add(7);
    auto inner_snapshot = inner.Snapshot();
    ASSERT_EQ(inner_snapshot.size(), 1u);
    EXPECT_EQ(inner_snapshot[0].second, 7u);
  }
  auto outer_snapshot = outer.Snapshot();
  ASSERT_EQ(outer_snapshot.size(), 1u);
  EXPECT_EQ(outer_snapshot[0].second, 10u);  // own 3 + folded inner 7
}

// --- Run-log buffering for sweep-order stability ----------------------------

TEST(RunLogBuffer, CapturesAndReplaysInCallerChosenOrder) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  obs::RunLog* log = obs::RunLog::Global();
  ASSERT_NE(log, nullptr);

  auto record = [](int cell) {
    obs::JsonValue v = obs::JsonValue::Object();
    v["cell"] = cell;
    return v;
  };

  // Capture two cells out of order, replay them in cell order — the
  // SweepRunner pattern.
  std::string cell1;
  {
    obs::RunLogBuffer buffer;
    log->Write(record(1));
    cell1 = buffer.Take();
  }
  std::string cell0;
  {
    obs::RunLogBuffer buffer;
    log->Write(record(0));
    cell0 = buffer.Take();
  }
  EXPECT_EQ(sink.str(), "");  // nothing reached the stream yet
  log->WriteRaw(cell0);
  log->WriteRaw(cell1);
  obs::RunLog::CloseGlobal();

  EXPECT_EQ(sink.str(), "{\"cell\":0}\n{\"cell\":1}\n");
}

TEST(RunLogBuffer, UntakenLinesAreDiscardedAtScopeExit) {
  std::ostringstream sink;
  obs::RunLog::AttachGlobal(&sink);
  {
    obs::RunLogBuffer buffer;
    obs::RunLog::Global()->Write(obs::JsonValue::Object());
  }
  obs::RunLog::CloseGlobal();
  EXPECT_EQ(sink.str(), "");
}

}  // namespace
}  // namespace aqo
