// Error-path coverage for the recoverable readers (io/serialization.h):
// every malformed shape returns a structured ParseResult error — never an
// abort — and the valid fixtures under examples/fixtures/ round-trip
// bit-identically. The legacy abort-on-error wrappers are covered by
// tests/io_test.cc's death tests; this file exercises the Parse* layer
// the CLI tools use.

#include "io/serialization.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/fault_injection.h"

namespace aqo {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(AQO_EXAMPLES_DIR) + "/fixtures/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

template <typename T>
ParseResult<T> ParseString(ParseResult<T> (*parse)(std::istream&),
                           const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

template <typename T>
void ExpectError(ParseResult<T> (*parse)(std::istream&),
                 const std::string& text, const std::string& reason) {
  ParseResult<T> r = ParseString(parse, text);
  EXPECT_FALSE(r.ok()) << "accepted malformed input: " << text;
  EXPECT_NE(r.error.find(reason), std::string::npos)
      << "error was: " << r.error << " (wanted substring: " << reason << ")";
}

// ---------------------------------------------------------------------------
// Graph reader.

TEST(GraphParse, MalformedInputsReturnStructuredErrors) {
  ExpectError(&ParseGraph, "", "missing graph header");
  ExpectError(&ParseGraph, "grph 2 0\n", "bad graph header");
  ExpectError(&ParseGraph, "graph 2\n", "bad graph header");
  ExpectError(&ParseGraph, "graph -1 0\n", "bad graph header");
  ExpectError(&ParseGraph, "graph 2 1\n", "truncated graph edge list");
  ExpectError(&ParseGraph, "graph 2 1\nf 0 1\n", "bad edge line");
  ExpectError(&ParseGraph, "graph 2 1\ne 0 x\n", "bad edge line");
  ExpectError(&ParseGraph, "graph 2 1\ne 0 5\n", "edge vertex out of range");
  ExpectError(&ParseGraph, "graph 2 1\ne 1 1\n", "self-loop edge");
  ExpectError(&ParseGraph, "graph 3 2\ne 0 1\ne 1 0\n", "duplicate edge");
}

TEST(GraphParse, FixturesRejectWithReasons) {
  for (const auto& [file, reason] :
       {std::pair<const char*, const char*>{"graph_truncated.txt",
                                            "truncated graph edge list"},
        {"graph_bad_edge.txt", "edge vertex out of range"},
        {"graph_duplicate_edge.txt", "duplicate edge"}}) {
    ExpectError(&ParseGraph, ReadFile(FixturePath(file)), reason);
  }
}

TEST(GraphParse, ValidFixtureRoundTrips) {
  ParseResult<Graph> r =
      ParseString(&ParseGraph, ReadFile(FixturePath("graph_valid.txt")));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->NumVertices(), 4);
  EXPECT_EQ(r.value->NumEdges(), 5);
  // Parse(Write(g)) == g, and the serialized bytes are a fixed point.
  std::string text = GraphToString(*r.value);
  ParseResult<Graph> again = ParseString(&ParseGraph, text);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(*again.value, *r.value);
  EXPECT_EQ(GraphToString(*again.value), text);
}

// ---------------------------------------------------------------------------
// DIMACS reader.

TEST(DimacsParse, MalformedInputsReturnStructuredErrors) {
  ExpectError(&ParseDimacs, "", "missing DIMACS header");
  ExpectError(&ParseDimacs, "p sat 2 1\n1 0\n", "bad DIMACS header");
  ExpectError(&ParseDimacs, "p cnf 2 2\n1 -2 0\n", "truncated DIMACS body");
  ExpectError(&ParseDimacs, "p cnf 2 1\n0\n", "empty DIMACS clause");
  ExpectError(&ParseDimacs, "p cnf 2 1\n1 -9 0\n",
              "DIMACS literal out of range");
  ExpectError(&ParseDimacs, "p cnf 2 1\n1 x 0\n", "bad DIMACS body line");
}

TEST(DimacsParse, TruncatedFixtureRejects) {
  ExpectError(&ParseDimacs, ReadFile(FixturePath("dimacs_truncated.txt")),
              "truncated DIMACS body");
}

// ---------------------------------------------------------------------------
// QO_N reader.

TEST(QonParse, MalformedInputsReturnStructuredErrors) {
  ExpectError(&ParseQonInstance, "", "missing qon header");
  ExpectError(&ParseQonInstance, "qno 2\n", "bad qon header");
  ExpectError(&ParseQonInstance, "qon 0\n", "bad qon header");
  ExpectError(&ParseQonInstance, "qon 2\nrel 7 3.0\n", "bad rel line");
  ExpectError(&ParseQonInstance, "qon 2\nrel 0 nanana\n", "bad rel line");
  ExpectError(&ParseQonInstance, "qon 2\nedge 0 0 -1\n", "bad edge line");
  ExpectError(&ParseQonInstance, "qon 2\nedge 0 9 -1\n", "bad edge line");
  ExpectError(&ParseQonInstance, "qon 2\nedge 0 1 2.0\n",
              "edge selectivity above 1");
  ExpectError(&ParseQonInstance, "qon 2\nedge 0 1 -1\nedge 1 0 -1\n",
              "duplicate edge");
  ExpectError(&ParseQonInstance, "qon 2\nw 0 0 1\n", "bad w line");
  ExpectError(&ParseQonInstance,
              "qon 2\nrel 1 10\nedge 0 1 -2\nw 0 1 20\n",
              "access cost out of");
  ExpectError(&ParseQonInstance, "qon 2\nbogus 1 2 3\n", "unknown qon line");
}

TEST(QonParse, FixturesRejectWithReasons) {
  ExpectError(&ParseQonInstance,
              ReadFile(FixturePath("qon_truncated_header.txt")),
              "missing qon header");
  ExpectError(&ParseQonInstance, ReadFile(FixturePath("qon_unknown_tag.txt")),
              "unknown qon line");
}

TEST(QonParse, ValidFixtureRoundTrips) {
  ParseResult<QonInstance> r = ParseString(
      &ParseQonInstance, ReadFile(FixturePath("qon_valid.txt")));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->NumRelations(), 3);
  std::string text = QonToString(*r.value);
  ParseResult<QonInstance> again = ParseString(&ParseQonInstance, text);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(QonToString(*again.value), text);
}

// ---------------------------------------------------------------------------
// QO_H reader.

TEST(QohParse, MalformedInputsReturnStructuredErrors) {
  ExpectError(&ParseQohInstance, "", "missing qoh header");
  ExpectError(&ParseQohInstance, "qoh 2\n", "bad qoh header");  // no memory/eta
  ExpectError(&ParseQohInstance, "qoh 2 -5 0.5\n", "bad qoh header");
  ExpectError(&ParseQohInstance, "qoh 2 170 1.5\n", "bad qoh header");
  ExpectError(&ParseQohInstance, "qoh 2 170 0.5\nrel 7 3\n", "bad rel line");
  ExpectError(&ParseQohInstance, "qoh 2 170 0.5\nedge 0 0 -1\n",
              "bad edge line");
  ExpectError(&ParseQohInstance, "qoh 2 170 0.5\nedge 0 1 1.0\n",
              "edge selectivity above 1");
  ExpectError(&ParseQohInstance,
              "qoh 2 170 0.5\nedge 0 1 -1\nedge 1 0 -1\n", "duplicate edge");
  ExpectError(&ParseQohInstance, "qoh 2 170 0.5\nw 0 1 1\n",
              "unknown qoh line");
}

TEST(QohParse, FixturesBehave) {
  ExpectError(&ParseQohInstance, ReadFile(FixturePath("qoh_bad_header.txt")),
              "bad qoh header");
  ParseResult<QohInstance> r = ParseString(
      &ParseQohInstance, ReadFile(FixturePath("qoh_valid.txt")));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->NumRelations(), 3);
  EXPECT_EQ(r.value->memory(), 170.0);
  EXPECT_EQ(r.value->eta(), 0.5);
  std::ostringstream os;
  WriteQohInstance(*r.value, os);
  std::string text = os.str();
  std::istringstream is(text);
  ParseResult<QohInstance> again = ParseQohInstance(is);
  ASSERT_TRUE(again.ok()) << again.error;
  std::ostringstream os2;
  WriteQohInstance(*again.value, os2);
  EXPECT_EQ(os2.str(), text);
}

// ---------------------------------------------------------------------------
// The "io.parse" fault site: an armed k-th parse fails with an injected
// error; everything before and after parses normally.

TEST(IoFaultInjection, ArmedParseFailsOnceThenRecovers) {
  const std::string good = ReadFile(FixturePath("graph_valid.txt"));
  ASSERT_TRUE(ParseString(&ParseGraph, good).ok());

  // The io.parse ordinal counter is process-wide, so arm the wildcard:
  // exactly the next parse fails, with an injected-fault reason.
  FaultInjector::Get().Arm("io.parse", FaultInjector::kAnyOrdinal,
                           /*times=*/1);
  ParseResult<Graph> injected = ParseString(&ParseGraph, good);
  EXPECT_FALSE(injected.ok());
  EXPECT_NE(injected.error.find("injected fault at io.parse"),
            std::string::npos)
      << injected.error;

  // The shot is spent: the same input parses cleanly again, both while
  // the (exhausted) spec is still armed and after disarming.
  EXPECT_TRUE(ParseString(&ParseGraph, good).ok());
  FaultInjector::Get().Disarm();
  EXPECT_TRUE(ParseString(&ParseGraph, good).ok());
}

}  // namespace
}  // namespace aqo
