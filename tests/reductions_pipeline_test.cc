// End-to-end tests of the composed Theorem 9 / Theorem 15 chains:
// 3SAT -> clique variant -> QO instance, with witnesses and floors.

#include <gtest/gtest.h>

#include "qo/optimizers.h"
#include "reductions/pipeline.h"
#include "sat/gen.h"
#include "util/random.h"

namespace aqo {
namespace {

CnfFormula TinyUnsat() {
  // x1, x2, and not both -> plus forcing clauses; u* = 1.
  CnfFormula f(2);
  f.AddClause({1});
  f.AddClause({2});
  f.AddClause({-1, -2});
  return f;
}

// v independent contradictions: u* = v. This is the executable stand-in
// for the PCP gap amplification (Theorem 1): NO instances with u* =
// Theta(m) unsatisfied clauses, which is what pushes the certified floor
// a Theta(n) power of alpha above K.
CnfFormula Contradictions(int v) {
  CnfFormula f(v);
  for (int i = 1; i <= v; ++i) {
    f.AddClause({i});
    f.AddClause({i});
    f.AddClause({-i});
  }
  return f;
}

TEST(ComposeSatToQon, SatisfiableSideProducesCheapWitness) {
  Rng rng(111);
  SatToQonOptions options;
  options.log2_alpha = 8.0;
  for (int trial = 0; trial < 8; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(4, 5, &rng);
    SatToQonComposition out = ComposeSatToQon(f, options);
    EXPECT_TRUE(out.satisfiable);
    EXPECT_EQ(out.min_unsat, 0);
    ASSERT_TRUE(out.witness.has_value());
    EXPECT_TRUE(IsPermutation(*out.witness, out.gap.n));
    // The witness reproduces its claimed cost.
    EXPECT_TRUE(QonSequenceCost(out.gap.instance, *out.witness)
                    .ApproxEquals(out.witness_cost, 1e-9));
    // Lemma 6: the greedy clique-first witness meets K (with a hair of
    // constant slack).
    EXPECT_LE(out.witness_cost.Log2(),
              out.gap.KBound().Log2() + 0.5 * options.log2_alpha);
  }
}

TEST(ComposeSatToQon, UnsatisfiableSideGetsCertifiedFloor) {
  SatToQonOptions options;
  options.log2_alpha = 8.0;
  SatToQonComposition out = ComposeSatToQon(TinyUnsat(), options);
  EXPECT_FALSE(out.satisfiable);
  EXPECT_EQ(out.min_unsat, 1);
  EXPECT_FALSE(out.witness.has_value());
  EXPECT_GT(out.certified_floor.Log2(), 0.0);
  // The floor must clear the YES threshold K: that is the decision gap.
  EXPECT_GT(out.certified_floor.Log2(), out.gap.KBound().Log2());
}

TEST(ComposeSatToQon, GapGrowsWithUnsatisfiedClauses) {
  // The decision gap of Theorem 9, with the contradiction family playing
  // the role of gap-3SAT NO instances: the certified floor clears K by
  // roughly alpha^{u*}, while same-shape satisfiable formulas optimize to
  // (at most) K.
  Rng rng(112);
  SatToQonOptions options;
  options.log2_alpha = 16.0;
  for (int v : {2, 3, 4, 6}) {
    CnfFormula yes_f = PlantedSatisfiableThreeSat(std::max(v, 3), 3 * v, &rng);
    SatToQonComposition yes = ComposeSatToQon(yes_f, options);
    ASSERT_TRUE(yes.satisfiable);
    double yes_excess = yes.witness_cost.Log2() - yes.gap.KBound().Log2();
    EXPECT_LE(yes_excess, 0.5 * options.log2_alpha);

    SatToQonComposition no = ComposeSatToQon(Contradictions(v), options);
    ASSERT_FALSE(no.satisfiable);
    EXPECT_EQ(no.min_unsat, v);
    double no_excess = no.certified_floor.Log2() - no.gap.KBound().Log2();
    // Floor clears K by at least (u* - 1) powers of alpha...
    EXPECT_GE(no_excess, (v - 1.0) * options.log2_alpha);
    // ...and in particular clears the YES side decisively.
    EXPECT_GT(no_excess, yes_excess + options.log2_alpha);
  }
}

TEST(ComposeSatToQoh, SatisfiableSideWitnessPlanWorks) {
  Rng rng(113);
  SatToQohOptions options;
  for (int trial = 0; trial < 5; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(3, 3, &rng);
    SatToQohComposition out = ComposeSatToQoh(f, options);
    EXPECT_TRUE(out.satisfiable);
    ASSERT_TRUE(out.witness.has_value());
    // Witness feasible (checked in the composition) and costed.
    EXPECT_GT(out.witness_cost.Log2(), 0.0);
    // n here is small (3(v+2m) = 27): allow generous constant slack on L.
    EXPECT_LE(out.witness_cost.Log2(), out.l_bound.Log2() + 6.0);
  }
}

TEST(ComposeSatToQoh, UnsatisfiableSideReportsFloor) {
  // u* = 1 gives epsilon with G = L exactly (n eps/3 = 1); u* = 2 puts the
  // floor strictly above L.
  SatToQohOptions options;
  SatToQohComposition one = ComposeSatToQoh(TinyUnsat(), options);
  EXPECT_FALSE(one.satisfiable);
  EXPECT_EQ(one.min_unsat, 1);
  EXPECT_GE(one.no_floor.Log2(), one.l_bound.Log2() - 1e-9);

  SatToQohComposition two = ComposeSatToQoh(Contradictions(2), options);
  EXPECT_EQ(two.min_unsat, 2);
  EXPECT_GT(two.no_floor.Log2(), two.l_bound.Log2() + 0.5);
}

TEST(ComposeSatToQoh, InstanceSizesArePolynomial) {
  // Reduction-size sanity: query graph vertices = 3(v + 2m) + 1.
  Rng rng(114);
  CnfFormula f = PlantedSatisfiableThreeSat(3, 4, &rng);
  SatToQohComposition out = ComposeSatToQoh(f, SatToQohOptions{});
  EXPECT_EQ(out.gap.instance.NumRelations(), 3 * (3 + 8) + 1);
}

}  // namespace
}  // namespace aqo
