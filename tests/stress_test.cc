// Randomized cross-validation stress suite: larger seed sweeps of the
// library's load-bearing equivalences. Kept as plain TESTs with generous
// trial counts so `ctest` exercises hundreds of random instances per run.

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/bnb.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qon.h"
#include "sqo/partition.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(Stress, FourExactQonOptimizersAgree) {
  Rng rng(211);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    WorkloadOptions options;
    options.shape = trial % 2 == 0 ? WorkloadShape::kRandom : WorkloadShape::kTree;
    QonInstance inst = RandomQonWorkload(n, &rng, options);
    OptimizerResult ex = ExhaustiveQonOptimizer(inst);
    OptimizerResult dp = DpQonOptimizer(inst);
    BnbResult bnb = BranchAndBoundQonOptimizer(inst);
    ASSERT_TRUE(ex.feasible && dp.feasible && bnb.proven_optimal);
    EXPECT_TRUE(ex.cost.ApproxEquals(dp.cost, 1e-9));
    EXPECT_TRUE(ex.cost.ApproxEquals(bnb.result.cost, 1e-9));
    if (options.shape == WorkloadShape::kTree) {
      OptimizerOptions no_cp;
      no_cp.forbid_cartesian = true;
      OptimizerResult dp_cp = DpQonOptimizer(inst, no_cp);
      OptimizerResult kbz = IkkbzOptimizer(inst);
      ASSERT_TRUE(dp_cp.feasible && kbz.feasible);
      EXPECT_TRUE(kbz.cost.ApproxEquals(dp_cp.cost, 1e-6));
    }
  }
}

TEST(Stress, HeuristicsAlwaysProduceValidCostedPlans) {
  Rng rng(212);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 20));
    QonInstance inst = RandomQonWorkload(n, &rng);
    OptimizerOptions sample_options;
    sample_options.samples = 30;
    OptimizerOptions ii_options;
    ii_options.restarts = 1;
    for (const OptimizerResult& r :
         {GreedyQonOptimizer(inst),
          RandomSamplingOptimizer(inst, &rng, sample_options),
          IterativeImprovementOptimizer(inst, &rng, ii_options)}) {
      ASSERT_TRUE(r.feasible);
      ASSERT_TRUE(IsPermutation(r.sequence, n));
      EXPECT_TRUE(QonSequenceCost(inst, r.sequence).ApproxEquals(r.cost, 1e-9));
    }
  }
}

TEST(Stress, GapFloorSoundAcrossRandomGraphFamilies) {
  Rng rng(213);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 11));
    Graph g;
    switch (trial % 3) {
      case 0:
        g = Gnp(n, rng.UniformReal(0.2, 0.95), &rng);
        break;
      case 1:
        g = CompleteMultipartite(n, static_cast<int>(rng.UniformInt(1, n)));
        break;
      default:
        g = PlantedClique(n, static_cast<int>(rng.UniformInt(0, n)), 0.3, &rng);
        break;
    }
    QonGapParams params{.c = 0.9, .d = rng.UniformReal(0.1, 0.8),
                        .log2_alpha = rng.UniformReal(2.0, 10.0)};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    int omega = static_cast<int>(MaxClique(g).clique.size());
    OptimizerResult opt = DpQonOptimizer(gap.instance);
    ASSERT_TRUE(opt.feasible);
    EXPECT_GE(opt.cost.Log2() + 1e-6, gap.CertifiedLowerBound(omega).Log2())
        << "family=" << trial % 3 << " n=" << n << " omega=" << omega;
  }
}

TEST(Stress, PartitionChainAgreesOnLargerInstances) {
  Rng rng(214);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 10));
    PartitionInstance part =
        RandomPartitionInstance(n, 8, rng.Bernoulli(0.4), &rng);
    PartitionInstance cleaned;
    for (int64_t v : part.values) {
      if (v > 0) cleaned.values.push_back(v);
    }
    if (cleaned.values.size() < 2 || cleaned.Total() < 4 ||
        cleaned.values.size() > 8) {
      continue;
    }
    ++checked;
    bool expected = SolvePartitionBrute(cleaned).has_value();
    EXPECT_EQ(SolvePartitionDp(cleaned).has_value(), expected);
    SppcsInstance sppcs = ReducePartitionToSppcs(cleaned);
    EXPECT_EQ(SolveSppcsBrute(sppcs).yes, expected);
    SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
    EXPECT_EQ(SolveSqoCpExact(red.instance).within_budget, expected)
        << "trial=" << trial;
  }
  EXPECT_GE(checked, 20);
}

TEST(Stress, CliqueSolverConsistentWithGreedyAndTargets) {
  Rng rng(215);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 35));
    Graph g = Gnp(n, rng.UniformReal(0.1, 0.9), &rng);
    MaxCliqueResult exact = MaxClique(g);
    ASSERT_TRUE(exact.exact);
    std::vector<int> greedy = GreedyClique(g, &rng, 4);
    EXPECT_LE(greedy.size(), exact.clique.size());
    int omega = static_cast<int>(exact.clique.size());
    EXPECT_TRUE(HasCliqueOfSize(g, omega));
    EXPECT_FALSE(HasCliqueOfSize(g, omega + 1));
  }
}

TEST(Stress, QohDecompositionNeverWorseThanAnyManualSplit) {
  Rng rng(216);
  for (int trial = 0; trial < 25; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    QohInstance inst = RandomQohWorkload(n, &rng, rng.UniformReal(0.1, 1.0));
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    QohPlan best = OptimalDecomposition(inst, seq);
    // Random manual decompositions.
    for (int attempt = 0; attempt < 20; ++attempt) {
      PipelineDecomposition d;
      d.starts = {1};
      for (int j = 2; j <= n - 1; ++j) {
        if (rng.Bernoulli(0.4)) d.starts.push_back(j);
      }
      PipelineCostResult r = DecompositionCost(inst, seq, d);
      if (r.feasible) {
        ASSERT_TRUE(best.feasible);
        EXPECT_LE(best.cost.Log2(), r.cost.Log2() + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace aqo
