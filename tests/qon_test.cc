// Tests for the QO_N instance and nested-loops cost model (paper §2.1).

#include "qo/qon.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace aqo {
namespace {

// Independent linear-domain reference implementation of the §2.1 cost
// model, for small instances whose numbers fit in double.
double ReferenceCost(const QonInstance& inst, const JoinSequence& seq) {
  double cost = 0.0;
  double inter = inst.size(seq[0]).ToLinear();
  for (size_t i = 1; i < seq.size(); ++i) {
    int j = seq[i];
    double min_w = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < i; ++k) {
      min_w = std::min(min_w, inst.AccessCost(seq[k], j).ToLinear());
    }
    cost += inter * min_w;
    double next = inter * inst.size(j).ToLinear();
    for (size_t k = 0; k < i; ++k) {
      if (inst.graph().HasEdge(seq[k], j))
        next *= inst.selectivity(seq[k], j).ToLinear();
    }
    inter = next;
  }
  return cost;
}

QonInstance RandomSmallInstance(int n, Rng* rng) {
  Graph g = Gnp(n, 0.5, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(2, 1000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.01, 1.0)));
  }
  return inst;
}

TEST(QonInstance, DefaultsAndValidation) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  QonInstance inst(g, {LogDouble::FromLinear(10.0), LogDouble::FromLinear(20.0),
                       LogDouble::FromLinear(40.0)});
  // Non-edge: selectivity 1, access cost t_j.
  EXPECT_EQ(inst.selectivity(0, 2).Log2(), 0.0);
  EXPECT_DOUBLE_EQ(inst.AccessCost(0, 2).ToLinear(), 40.0);
  // Edge with selectivity: access cost defaults to t_j * s.
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  EXPECT_DOUBLE_EQ(inst.AccessCost(0, 1).ToLinear(), 10.0);
  EXPECT_DOUBLE_EQ(inst.AccessCost(1, 0).ToLinear(), 5.0);
  inst.Validate();
}

TEST(QonInstance, AccessCostOverrideWithinBounds) {
  Graph g = Graph::FromEdges(2, {{0, 1}});
  QonInstance inst(g, {LogDouble::FromLinear(100.0), LogDouble::FromLinear(100.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.1));
  inst.SetAccessCost(0, 1, LogDouble::FromLinear(50.0));  // in [10, 100]
  EXPECT_DOUBLE_EQ(inst.AccessCost(0, 1).ToLinear(), 50.0);
  inst.Validate();
}

TEST(QonCost, PrefixSizesMatchHandComputation) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  QonInstance inst(g, {LogDouble::FromLinear(10.0), LogDouble::FromLinear(20.0),
                       LogDouble::FromLinear(30.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  inst.SetSelectivity(1, 2, LogDouble::FromLinear(0.1));
  std::vector<LogDouble> sizes = PrefixSizes(inst, {0, 1, 2});
  EXPECT_DOUBLE_EQ(sizes[0].ToLinear(), 1.0);
  EXPECT_DOUBLE_EQ(sizes[1].ToLinear(), 10.0);
  EXPECT_DOUBLE_EQ(sizes[2].ToLinear(), 100.0);   // 10*20*0.5
  EXPECT_NEAR(sizes[3].ToLinear(), 300.0, 1e-9);  // 100*30*0.1
}

TEST(QonCost, MatchesLinearReferenceOnRandomInstances) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 8));
    QonInstance inst = RandomSmallInstance(n, &rng);
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    double reference = ReferenceCost(inst, seq);
    LogDouble cost = QonSequenceCost(inst, seq);
    EXPECT_NEAR(cost.ToLinear(), reference, reference * 1e-9)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(QonCost, JoinCostsSumToSequenceCost) {
  Rng rng(42);
  QonInstance inst = RandomSmallInstance(7, &rng);
  JoinSequence seq = IdentitySequence(7);
  std::vector<LogDouble> h = QonJoinCosts(inst, seq);
  EXPECT_EQ(h.size(), 6u);
  LogDouble sum = LogDouble::Zero();
  for (LogDouble x : h) sum += x;
  EXPECT_TRUE(sum.ApproxEquals(QonSequenceCost(inst, seq), 1e-9));
}

TEST(QonCost, CartesianProductDetection) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  JoinSequence with_cp = {0, 1, 2, 3};
  EXPECT_TRUE(HasCartesianProduct(g, with_cp));
  Graph connected = Chain(4);
  EXPECT_FALSE(HasCartesianProduct(connected, {1, 0, 2, 3}));
  EXPECT_TRUE(HasCartesianProduct(connected, {0, 2, 1, 3}));
}

TEST(QonCost, BackEdgeAndPrefixEdgeCounts) {
  Graph g = Graph::Complete(4);
  JoinSequence seq = {0, 1, 2, 3};
  EXPECT_EQ(BackEdgeCounts(g, seq), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(PrefixEdgeCounts(g, seq), (std::vector<int>{0, 0, 1, 3, 6}));
}

TEST(QonCost, ScalesWithAccessCosts) {
  // Doubling every access cost doubles the total cost.
  Rng rng(43);
  Graph g = Gnp(6, 0.6, &rng);
  std::vector<LogDouble> sizes(6, LogDouble::FromLinear(64.0));
  QonInstance a(g, sizes);
  QonInstance b(g, sizes);
  for (const auto& [u, v] : g.Edges()) {
    a.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
    b.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
    b.SetAccessCost(u, v, LogDouble::FromLinear(32.0));  // 2x the default 16
    b.SetAccessCost(v, u, LogDouble::FromLinear(32.0));
  }
  JoinSequence seq = IdentitySequence(6);
  LogDouble ca = QonSequenceCost(a, seq);
  LogDouble cb = QonSequenceCost(b, seq);
  EXPECT_GE(cb, ca);
  EXPECT_LE(cb, ca * LogDouble::FromLinear(2.0 + 1e-9));
}

TEST(QonCost, HugeInstanceStaysFinite) {
  // The f_N regime: alpha = 2^100, t = alpha^{0.6 n}, n = 30.
  Rng rng(44);
  Graph g = Gnp(30, 0.9, &rng);
  LogDouble alpha = LogDouble::FromLog2(100.0);
  LogDouble t = alpha.Pow(0.6 * 30);
  std::vector<LogDouble> sizes(30, t);
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::One() / alpha);
  }
  JoinSequence seq = IdentitySequence(30);
  LogDouble cost = QonSequenceCost(inst, seq);
  EXPECT_TRUE(std::isfinite(cost.Log2()));
  EXPECT_GT(cost.Log2(), 1000.0);
}

}  // namespace
}  // namespace aqo
