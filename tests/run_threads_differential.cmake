# Thread-count differential for qon_gap (see tests/CMakeLists.txt).
#
# Runs `qon_gap --quick=1` with --threads=1 and --threads=8 and fails
# unless (a) the printed tables are byte-identical and (b) the JSONL
# run-log *bodies* are identical, record for record, in the same order.
# Normalization before the JSONL comparison: the provenance header is
# dropped (it stamps a timestamp), `wall_seconds` values are blanked, and
# the `histograms` object is emptied (both carry real timings, the only
# fields that legitimately vary between runs).
#
# Usage: cmake -DQON_GAP=<binary> -DWORK_DIR=<dir> -P run_threads_differential.cmake

if(NOT QON_GAP OR NOT WORK_DIR)
  message(FATAL_ERROR "QON_GAP and WORK_DIR are required")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_qon_gap threads)
  execute_process(
    COMMAND "${QON_GAP}" --quick=1 --seed=5 --threads=${threads}
            --json-out=${WORK_DIR}/t${threads}.jsonl
    OUTPUT_FILE "${WORK_DIR}/t${threads}.txt"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qon_gap --threads=${threads} exited with ${rc}")
  endif()
endfunction()

# Strips the run_header record and blanks wall_seconds, writing the
# normalized body to ${out}.
function(normalize_jsonl in out)
  file(STRINGS "${in}" lines)
  set(body "")
  foreach(line IN LISTS lines)
    if(line MATCHES "\"type\":\"run_header\"")
      continue()
    endif()
    string(REGEX REPLACE "\"wall_seconds\":[0-9.eE+-]+" "\"wall_seconds\":0"
           line "${line}")
    # Latency distributions are timings too. The greedy .* is safe: each
    # record has exactly one "histograms" key, always followed by "spans".
    string(REGEX REPLACE "\"histograms\":.*,\"spans\":"
           "\"histograms\":{},\"spans\":" line "${line}")
    string(APPEND body "${line}\n")
  endforeach()
  file(WRITE "${out}" "${body}")
endfunction()

run_qon_gap(1)
run_qon_gap(8)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/t1.txt" "${WORK_DIR}/t8.txt"
  RESULT_VARIABLE table_diff)
if(NOT table_diff EQUAL 0)
  message(FATAL_ERROR
    "qon_gap tables differ between --threads=1 and --threads=8 "
    "(${WORK_DIR}/t1.txt vs t8.txt)")
endif()

normalize_jsonl("${WORK_DIR}/t1.jsonl" "${WORK_DIR}/t1.norm.jsonl")
normalize_jsonl("${WORK_DIR}/t8.jsonl" "${WORK_DIR}/t8.norm.jsonl")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/t1.norm.jsonl" "${WORK_DIR}/t8.norm.jsonl"
  RESULT_VARIABLE jsonl_diff)
if(NOT jsonl_diff EQUAL 0)
  message(FATAL_ERROR
    "qon_gap run-log bodies differ between --threads=1 and --threads=8 "
    "(${WORK_DIR}/t1.norm.jsonl vs t8.norm.jsonl)")
endif()

message(STATUS "qon_gap threads differential: tables and run-log bodies identical")
