// Tests for the QO_H pipelined hash-join model (paper §2.2): the h/g cost
// functions, optimal memory allocation (Lemma 10's structure), and the
// pipeline-decomposition DP.

#include "qo/qoh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace aqo {
namespace {

QohInstance SmallInstance(int n, double memory, Rng* rng, double sel = 0.5,
                          double size = 64.0) {
  Graph g = Gnp(n, 0.6, rng);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(size));
  QohInstance inst(g, std::move(sizes), memory);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(sel));
  }
  return inst;
}

// Enumerates all 2^(j-1) pipeline decompositions of a sequence and returns
// the best feasible cost (reference for the DP).
bool BestDecompositionBrute(const QohInstance& inst, const JoinSequence& seq,
                            LogDouble* best) {
  int joins = static_cast<int>(seq.size()) - 1;
  bool any = false;
  for (uint32_t mask = 0; mask < (1u << (joins - 1)); ++mask) {
    PipelineDecomposition d;
    d.starts = {1};
    for (int j = 2; j <= joins; ++j) {
      if (mask & (1u << (j - 2))) d.starts.push_back(j);
    }
    PipelineCostResult r = DecompositionCost(inst, seq, d);
    if (r.feasible && (!any || r.cost < *best)) {
      any = true;
      *best = r.cost;
    }
  }
  return any;
}

TEST(QohInstance, HjMin) {
  Rng rng(51);
  QohInstance inst = SmallInstance(4, 1000.0, &rng);
  EXPECT_DOUBLE_EQ(inst.HashJoinMinMemory(LogDouble::FromLinear(64.0)).ToLinear(),
                   8.0);
  EXPECT_DOUBLE_EQ(inst.HashJoinMinMemory(LogDouble::FromLinear(100.0)).ToLinear(),
                   10.0);
  // Non-square sizes round up.
  EXPECT_DOUBLE_EQ(inst.HashJoinMinMemory(LogDouble::FromLinear(10.0)).ToLinear(),
                   4.0);
}

TEST(QohCost, FullMemoryPipelineCostsReadBuildWrite) {
  // With memory >= sum of inner sizes, g = 0 for every join: the pipeline
  // costs input + sum(inner builds) + output.
  Rng rng(52);
  int n = 5;
  QohInstance inst = SmallInstance(n, 1e9, &rng);
  JoinSequence seq = IdentitySequence(n);
  std::vector<LogDouble> prefix = QohPrefixSizes(inst, seq);
  PipelineCostResult r = OptimalPipelineCost(inst, seq, 1, n - 1);
  ASSERT_TRUE(r.feasible);
  LogDouble expected = prefix[1] + prefix[static_cast<size_t>(n)];
  for (int j = 1; j <= n - 1; ++j) {
    expected += inst.size(seq[static_cast<size_t>(j)]);
  }
  EXPECT_TRUE(r.cost.ApproxEquals(expected, 1e-9))
      << r.cost.Log2() << " vs " << expected.Log2();
  // Every join got its full inner size.
  for (size_t j = 0; j < r.allocation.size(); ++j) {
    EXPECT_DOUBLE_EQ(r.allocation[j], 64.0);
  }
}

TEST(QohCost, MinimumMemoryJoinPaysOuterAgain) {
  // One join, memory exactly hjmin(inner): cost = outer + (outer+inner)*1 +
  // inner + output.
  Graph g = Chain(2);
  std::vector<LogDouble> sizes = {LogDouble::FromLinear(32.0),
                                  LogDouble::FromLinear(64.0)};
  QohInstance inst(g, sizes, /*memory=*/8.0);
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  JoinSequence seq = {0, 1};
  PipelineCostResult r = OptimalPipelineCost(inst, seq, 1, 1);
  ASSERT_TRUE(r.feasible);
  // N_0 = 32, inner = 64, g = 1, output = 32*64*0.5 = 1024.
  double expected = 32 + (32 + 64) * 1.0 + 64 + 1024;
  EXPECT_NEAR(r.cost.ToLinear(), expected, 1e-6);
  EXPECT_DOUBLE_EQ(r.allocation[0], 8.0);
}

TEST(QohCost, InfeasibleWhenFloorsExceedMemory) {
  Graph g = Chain(3);
  std::vector<LogDouble> sizes(3, LogDouble::FromLinear(10000.0));
  QohInstance inst(g, sizes, /*memory=*/150.0);  // hjmin = 100 each
  JoinSequence seq = {0, 1, 2};
  EXPECT_TRUE(OptimalPipelineCost(inst, seq, 1, 1).feasible);
  EXPECT_FALSE(OptimalPipelineCost(inst, seq, 1, 2).feasible);
}

TEST(QohCost, InfeasibleWhenHashTableCannotBeBuilt) {
  Graph g = Chain(2);
  std::vector<LogDouble> sizes = {LogDouble::FromLinear(8.0),
                                  LogDouble::FromLog2(200.0)};  // 2^200 pages
  QohInstance inst(g, sizes, 1000.0);
  EXPECT_FALSE(OptimalPipelineCost(inst, {0, 1}, 1, 1).feasible);
  // The other direction streams the huge relation: feasible.
  EXPECT_TRUE(OptimalPipelineCost(inst, {1, 0}, 1, 1).feasible);
}

TEST(QohCost, AllocatorStarvesTheCheapestOuter) {
  // Lemma 10's structure: when memory forces one join to the floor, the
  // optimal allocation starves the join with the smallest outer stream.
  Graph g = Graph::Complete(4);
  std::vector<LogDouble> sizes(4, LogDouble::FromLinear(64.0));
  // Selectivities make the intermediates grow: outers increase along the
  // pipeline, so the FIRST join has the smallest outer.
  double memory = 3 * 64.0 - 1.0;  // one page short of all-full... forces
                                   // partial starvation
  QohInstance inst(g, sizes, memory);
  JoinSequence seq = {0, 1, 2, 3};
  PipelineCostResult r = OptimalPipelineCost(inst, seq, 1, 3);
  ASSERT_TRUE(r.feasible);
  // Joins 2 and 3 (larger outers) keep full memory; join 1 gives up a page.
  EXPECT_DOUBLE_EQ(r.allocation[1], 64.0);
  EXPECT_DOUBLE_EQ(r.allocation[2], 64.0);
  EXPECT_DOUBLE_EQ(r.allocation[0], 63.0);
}

TEST(QohCost, AllocationIsOptimalVsRandomAllocations) {
  // Property test: no random feasible allocation beats the greedy one.
  Rng rng(53);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 4;
    double memory = rng.UniformReal(40.0, 200.0);
    QohInstance inst = SmallInstance(n, memory, &rng, 0.7);
    JoinSequence seq = IdentitySequence(n);
    PipelineCostResult opt = OptimalPipelineCost(inst, seq, 1, n - 1);
    if (!opt.feasible) continue;
    std::vector<LogDouble> prefix = QohPrefixSizes(inst, seq);
    for (int attempt = 0; attempt < 50; ++attempt) {
      // Random allocation: floors plus random split of the leftover.
      double floor_sum = 0.0;
      std::vector<double> alloc(static_cast<size_t>(n - 1));
      for (int j = 1; j <= n - 1; ++j) {
        alloc[static_cast<size_t>(j - 1)] =
            inst.HashJoinMinMemory(inst.size(seq[static_cast<size_t>(j)]))
                .ToLinear();
        floor_sum += alloc[static_cast<size_t>(j - 1)];
      }
      double leftover = memory - floor_sum;
      for (int j = 0; j < n - 1 && leftover > 0; ++j) {
        double grant = rng.UniformReal(0.0, leftover);
        double cap = 64.0 - alloc[static_cast<size_t>(j)];
        grant = std::min(grant, cap);
        alloc[static_cast<size_t>(j)] += grant;
        leftover -= grant;
      }
      // Cost this allocation by hand.
      LogDouble cost = prefix[1] + prefix[static_cast<size_t>(n)];
      for (int j = 1; j <= n - 1; ++j) {
        double inner = 64.0;
        double hjmin = 8.0;
        double m = alloc[static_cast<size_t>(j - 1)];
        double gfac = m >= inner ? 0.0 : (inner - m) / (inner - hjmin);
        cost += (prefix[static_cast<size_t>(j)] + LogDouble::FromLinear(inner)) *
                    LogDouble::FromLinear(gfac) +
                LogDouble::FromLinear(inner);
      }
      EXPECT_GE(cost.Log2(), opt.cost.Log2() - 1e-9)
          << "random allocation beat the greedy optimum";
    }
  }
}

TEST(QohCost, DecompositionDpMatchesBruteForce) {
  Rng rng(54);
  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 7));
    double memory = rng.UniformReal(20.0, 300.0);
    QohInstance inst = SmallInstance(n, memory, &rng,
                                     rng.UniformReal(0.1, 1.0));
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    QohPlan plan = OptimalDecomposition(inst, seq);
    LogDouble brute;
    bool brute_feasible = BestDecompositionBrute(inst, seq, &brute);
    ASSERT_EQ(plan.feasible, brute_feasible);
    if (plan.feasible) {
      EXPECT_TRUE(plan.cost.ApproxEquals(brute, 1e-9))
          << plan.cost.Log2() << " vs " << brute.Log2();
      // The reported decomposition reproduces the reported cost.
      PipelineCostResult check =
          DecompositionCost(inst, seq, plan.decomposition);
      ASSERT_TRUE(check.feasible);
      EXPECT_TRUE(check.cost.ApproxEquals(plan.cost, 1e-9));
    }
  }
}

TEST(QohCost, MaterializationBreaksHelpWhenMemoryTight) {
  // A long pipeline under tight memory re-reads big streams; breaking it
  // must never be worse than the single-pipeline plan.
  Rng rng(55);
  QohInstance inst = SmallInstance(6, 100.0, &rng, 0.9, 64.0);
  JoinSequence seq = IdentitySequence(6);
  QohPlan plan = OptimalDecomposition(inst, seq);
  PipelineCostResult single = OptimalPipelineCost(inst, seq, 1, 5);
  if (plan.feasible && single.feasible) {
    EXPECT_LE(plan.cost.Log2(), single.cost.Log2() + 1e-9);
  }
}

}  // namespace
}  // namespace aqo
