// Tests for the text serialization round-trips (io/serialization.h).

#include "io/serialization.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qon.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(GraphIo, RoundTrip) {
  Rng rng(141);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = Gnp(static_cast<int>(rng.UniformInt(1, 30)),
                  rng.UniformReal(0.0, 1.0), &rng);
    EXPECT_EQ(GraphFromString(GraphToString(g)), g);
  }
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  Graph g = GraphFromString("# a comment\n\ngraph 3 2\ne 0 1\n# another\ne 1 2\n");
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(DimacsIo, RoundTripPreservesSemantics) {
  Rng rng(142);
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula f = RandomThreeSat(8, 25, &rng);
    std::ostringstream os;
    WriteDimacs(f, os);
    std::istringstream is(os.str());
    CnfFormula g = ReadDimacs(is);
    EXPECT_EQ(g.num_vars(), f.num_vars());
    EXPECT_EQ(g.NumClauses(), f.NumClauses());
    EXPECT_EQ(SolveDpll(f).assignment.has_value(),
              SolveDpll(g).assignment.has_value());
  }
}

TEST(QonIo, RoundTripPreservesCosts) {
  Rng rng(143);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 10));
    Graph g = Gnp(n, 0.6, &rng);
    std::vector<LogDouble> sizes;
    for (int i = 0; i < n; ++i) {
      sizes.push_back(
          LogDouble::FromLinear(static_cast<double>(rng.UniformInt(2, 100000))));
    }
    QonInstance inst(g, std::move(sizes));
    for (const auto& [u, v] : g.Edges()) {
      inst.SetSelectivity(u, v,
                          LogDouble::FromLinear(rng.UniformReal(0.001, 1.0)));
    }
    QonInstance copy = QonFromString(QonToString(inst));
    ASSERT_EQ(copy.NumRelations(), n);
    JoinSequence seq = IdentitySequence(n);
    rng.Shuffle(&seq);
    EXPECT_TRUE(QonSequenceCost(copy, seq).ApproxEquals(
        QonSequenceCost(inst, seq), 1e-12));
  }
}

TEST(QonIo, AccessCostOverridesSurvive) {
  Graph g = Graph::FromEdges(2, {{0, 1}});
  QonInstance inst(g, {LogDouble::FromLinear(100.0), LogDouble::FromLinear(64.0)});
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.25));
  inst.SetAccessCost(0, 1, LogDouble::FromLinear(32.0));  // not the default 16
  QonInstance copy = QonFromString(QonToString(inst));
  EXPECT_TRUE(copy.AccessCost(0, 1).ApproxEquals(LogDouble::FromLinear(32.0)));
  EXPECT_TRUE(copy.AccessCost(1, 0).ApproxEquals(LogDouble::FromLinear(25.0)));
}

TEST(QonIo, GapInstanceRoundTripsWithHugeNumbers) {
  Rng rng(144);
  Graph g = CliqueClassGraph(30, 13, 1.0, 20, &rng);
  QonGapInstance gap = ReduceCliqueToQon(
      g, QonGapParams{.c = 2.0 / 3.0, .d = 1.0 / 3.0, .log2_alpha = 1000.0});
  QonInstance copy = QonFromString(QonToString(gap.instance));
  JoinSequence seq = IdentitySequence(30);
  EXPECT_TRUE(QonSequenceCost(copy, seq).ApproxEquals(
      QonSequenceCost(gap.instance, seq), 1e-12));
}

TEST(QohIo, RoundTripPreservesPlanCosts) {
  Rng rng(145);
  Graph g = Gnp(6, 0.7, &rng);
  std::vector<LogDouble> sizes(6, LogDouble::FromLinear(64.0));
  QohInstance inst(g, std::move(sizes), 170.0, 0.5);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.5));
  }
  std::ostringstream os;
  WriteQohInstance(inst, os);
  std::istringstream is(os.str());
  QohInstance copy = ReadQohInstance(is);
  EXPECT_EQ(copy.memory(), 170.0);
  EXPECT_EQ(copy.eta(), 0.5);
  JoinSequence seq = IdentitySequence(6);
  QohPlan a = OptimalDecomposition(inst, seq);
  QohPlan b = OptimalDecomposition(copy, seq);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_TRUE(a.cost.ApproxEquals(b.cost, 1e-12));
  }
}

using IoDeathTest = ::testing::Test;

TEST(IoDeathTest, MalformedInputsAreRejected) {
  EXPECT_DEATH(GraphFromString("graph 2 1\n"), "truncated");
  EXPECT_DEATH(GraphFromString("grph 2 0\n"), "bad graph header");
  EXPECT_DEATH(GraphFromString("graph 2 1\ne 0 5\n"), "check failed");
  EXPECT_DEATH(QonFromString("qon 2\nrel 7 3.0\n"), "bad rel line");
  EXPECT_DEATH(QonFromString("qon 2\nbogus 1 2 3\n"), "unknown qon line");
  std::istringstream bad_dimacs("p cnf 2 2\n1 0\n");
  EXPECT_DEATH(ReadDimacs(bad_dimacs), "truncated DIMACS");
}

}  // namespace
}  // namespace aqo
