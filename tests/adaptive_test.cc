// Unit tests for the adaptive meta-optimizer (qo/adaptive.h): feature
// extraction and its relabeling invariance, the feedback record codec and
// its corruption rejection, the store's commit-order independence and
// dedup, the explore/exploit decision rule, persistence (save/load,
// torn-tail salvage, write-through attachment), the never-worse-than-
// fallback guarantee, and decision-log replay.

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runlog.h"
#include "qo/adaptive.h"
#include "qo/fingerprint.h"
#include "qo/persist.h"
#include "qo/qon.h"
#include "qo/registry.h"
#include "qo/workloads.h"
#include "util/random.h"

namespace aqo {
namespace {

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return perm;
}

FeedbackRecord SampleRecord(uint64_t salt) {
  FeedbackRecord rec;
  rec.family = AdaptiveFamily::kQon;
  rec.optimizer = "greedy";
  rec.knob_hash = 0x1234 + salt;
  rec.features.n = 7;
  rec.features.edges = 11;
  rec.features.edge_density = 11.0 / 21.0;
  rec.features.log_size_mean = 12.5;
  rec.features.log_size_min = 4.0;
  rec.features.log_size_max = 16.75;
  rec.features.sel_log_mean = -3.25;
  rec.features.sel_log_min = -9.0;
  rec.features.wl_class = 0xfeedbeef + salt;
  rec.feasible = true;
  rec.cost_log2 = 42.125 + static_cast<double>(salt);
  rec.regret_log2 = 0.5;
  rec.evaluations = 100 + salt;
  rec.status = PlanStatus::kComplete;
  return rec;
}

// --- Features ---

TEST(AdaptiveFeatures, BitwiseInvariantUnderRelabeling) {
  Rng rng(901);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    QonInstance base = RandomQonWorkload(n, &rng);
    QonInstance relabeled =
        PermuteQonInstance(base, RandomPermutation(n, &rng));
    InstanceFeatures a = ExtractQonFeatures(CanonicalizeQon(base));
    InstanceFeatures b = ExtractQonFeatures(CanonicalizeQon(relabeled));
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.edge_density, b.edge_density);
    EXPECT_EQ(a.log_size_mean, b.log_size_mean);
    EXPECT_EQ(a.log_size_min, b.log_size_min);
    EXPECT_EQ(a.log_size_max, b.log_size_max);
    EXPECT_EQ(a.sel_log_mean, b.sel_log_mean);
    EXPECT_EQ(a.sel_log_min, b.sel_log_min);
    EXPECT_EQ(a.access_log_mean, b.access_log_mean);
    EXPECT_EQ(a.access_log_max, b.access_log_max);
    EXPECT_EQ(a.wl_class, b.wl_class) << "trial=" << trial;
  }
}

TEST(AdaptiveFeatures, QohCarriesMemoryAndEta) {
  Rng rng(902);
  QohInstance inst = RandomQohWorkload(6, &rng, 0.4);
  InstanceFeatures f = ExtractQohFeatures(CanonicalizeQoh(inst));
  EXPECT_EQ(f.n, 6);
  EXPECT_EQ(f.eta, inst.eta());
  EXPECT_NE(f.memory_log2, 0.0);

  QohInstance relabeled = PermuteQohInstance(inst, RandomPermutation(6, &rng));
  InstanceFeatures g = ExtractQohFeatures(CanonicalizeQoh(relabeled));
  EXPECT_EQ(f.memory_log2, g.memory_log2);
  EXPECT_EQ(f.eta, g.eta);
  EXPECT_EQ(f.wl_class, g.wl_class);
}

// --- Codec ---

TEST(AdaptiveCodec, RoundTripsEveryField) {
  FeedbackRecord rec = SampleRecord(7);
  rec.family = AdaptiveFamily::kQoh;
  rec.features.memory_log2 = 9.0;
  rec.features.eta = 0.75;
  rec.status = PlanStatus::kBudgetExhausted;
  std::string payload = EncodeFeedbackPayload(rec);
  FeedbackRecord back;
  std::string error;
  ASSERT_TRUE(DecodeFeedbackPayload(payload, &back, &error)) << error;
  EXPECT_EQ(back.family, rec.family);
  EXPECT_EQ(back.optimizer, rec.optimizer);
  EXPECT_EQ(back.knob_hash, rec.knob_hash);
  EXPECT_EQ(back.features.n, rec.features.n);
  EXPECT_EQ(back.features.edges, rec.features.edges);
  EXPECT_EQ(back.features.memory_log2, rec.features.memory_log2);
  EXPECT_EQ(back.features.eta, rec.features.eta);
  EXPECT_EQ(back.features.wl_class, rec.features.wl_class);
  EXPECT_EQ(back.feasible, rec.feasible);
  EXPECT_EQ(back.cost_log2, rec.cost_log2);
  EXPECT_EQ(back.regret_log2, rec.regret_log2);
  EXPECT_EQ(back.evaluations, rec.evaluations);
  EXPECT_EQ(back.status, rec.status);
}

TEST(AdaptiveCodec, RejectsMalformedPayloads) {
  std::string payload = EncodeFeedbackPayload(SampleRecord(0));
  FeedbackRecord out;
  std::string error;

  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeFeedbackPayload(std::string_view(payload.data(), len), &out,
                              &error))
        << "prefix " << len << " decoded";
  }
  // Trailing garbage: exact-length check.
  EXPECT_FALSE(DecodeFeedbackPayload(payload + "x", &out, &error));

  // Family and status bytes out of range.
  std::string bad = payload;
  bad[0] = 7;
  EXPECT_FALSE(DecodeFeedbackPayload(bad, &out, &error));
  bad = payload;
  bad[2] = 9;
  EXPECT_FALSE(DecodeFeedbackPayload(bad, &out, &error));
}

// --- Store: commit determinism, dedup, decisions ---

TEST(FeedbackStore, CommitIsOrderIndependentAndDedups) {
  FeedbackRecord a = SampleRecord(1);
  FeedbackRecord b = SampleRecord(2);
  FeedbackRecord c = SampleRecord(3);

  FeedbackStore s1;
  s1.Record(a);
  s1.Record(b);
  s1.Record(c);
  s1.Record(b);  // duplicate within one pending batch
  EXPECT_EQ(s1.PendingSize(), 4u);
  EXPECT_EQ(s1.Commit(), 3u);
  EXPECT_EQ(s1.CommittedSize(), 3u);
  EXPECT_EQ(s1.PendingSize(), 0u);

  FeedbackStore s2;
  s2.Record(c);
  s2.Record(b);
  s2.Record(a);
  EXPECT_EQ(s2.Commit(), 3u);

  // Same committed state from any arrival order: identical decisions.
  std::vector<std::string> candidates = {"greedy", "ii"};
  Recommendation r1 = s1.Recommend(a.features, AdaptiveFamily::kQon,
                                   candidates, a.knob_hash, 1.1, 4, 1, 99);
  Recommendation r2 = s2.Recommend(a.features, AdaptiveFamily::kQon,
                                   candidates, a.knob_hash, 1.1, 4, 1, 99);
  EXPECT_EQ(r1.optimizer, r2.optimizer);
  EXPECT_EQ(r1.explored, r2.explored);

  // Committing again (or duplicates) is a no-op.
  s1.Record(a);
  EXPECT_EQ(s1.Commit(), 0u);
  EXPECT_EQ(s1.CommittedSize(), 3u);
}

TEST(FeedbackStore, ExploresUntriedThenExploitsCheapestEligible) {
  FeedbackStore store;
  std::vector<std::string> candidates = {"greedy", "ii", "sa"};
  InstanceFeatures probe = SampleRecord(0).features;

  // Empty store: every candidate is under-tried, so the decision is a
  // seeded exploration draw — deterministic in decision_seed.
  Recommendation cold = store.Recommend(probe, AdaptiveFamily::kQon,
                                        candidates, 0, 1.1, 4, 1, 123);
  EXPECT_TRUE(cold.explored);
  Recommendation cold2 = store.Recommend(probe, AdaptiveFamily::kQon,
                                         candidates, 0, 1.1, 4, 1, 123);
  EXPECT_EQ(cold.optimizer, cold2.optimizer);

  // Feed trials: `ii` always hits zero regret at modest cost, `greedy`
  // has high regret, `sa` zero regret but much more effort.
  for (uint64_t i = 0; i < 3; ++i) {
    FeedbackRecord rec = SampleRecord(0);
    rec.knob_hash = 0;
    rec.optimizer = "greedy";
    rec.regret_log2 = 5.0;
    rec.evaluations = 10;
    store.Record(rec);
    rec.optimizer = "ii";
    rec.regret_log2 = 0.0;
    rec.evaluations = 200;
    store.Record(rec);
    rec.optimizer = "sa";
    rec.regret_log2 = 0.0;
    rec.evaluations = 5000;
    store.Record(rec);
    // Distinct cost so the three rounds are not deduped away.
    rec.cost_log2 += static_cast<double>(i);
  }
  // Records above are identical per round → dedup keeps one per
  // optimizer; min_trials=1 is satisfied for all three.
  store.Commit();
  Recommendation warm = store.Recommend(probe, AdaptiveFamily::kQon,
                                        candidates, 0, 1.1, 4, 1, 123);
  EXPECT_FALSE(warm.explored);
  EXPECT_EQ(warm.optimizer, "ii");
  ASSERT_EQ(warm.candidates.size(), 3u);
  EXPECT_FALSE(warm.candidates[0].eligible);  // greedy: regret too high
  EXPECT_TRUE(warm.candidates[1].eligible);
  EXPECT_TRUE(warm.candidates[2].eligible);  // sa eligible but pricier
}

// --- Persistence ---

TEST(FeedbackStore, SaveLoadRoundTripAndTornTailSalvage) {
  std::string path = testing::TempDir() + "/aqo_adaptive_store_test.bin";
  std::remove(path.c_str());

  FeedbackStore store;
  for (uint64_t i = 0; i < 5; ++i) store.Record(SampleRecord(i));
  ASSERT_EQ(store.Commit(), 5u);
  std::string error;
  ASSERT_TRUE(store.SaveTo(path, &error)) << error;

  FeedbackStore loaded;
  FeedbackLoadStats stats = loaded.LoadFrom(path);
  EXPECT_TRUE(stats.existed);
  EXPECT_EQ(stats.records, 5u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_TRUE(stats.damage.empty()) << stats.damage;
  EXPECT_EQ(loaded.CommittedSize(), 5u);

  // Tear the tail: append half of a frame. Load salvages all 5 intact
  // records and reports the torn tail.
  std::string frame = EncodeFramedRecord(EncodeFeedbackPayload(
      SampleRecord(99)));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(frame.data(),
              static_cast<std::streamsize>(frame.size() / 2));
  }
  FeedbackStore salvaged;
  stats = salvaged.LoadFrom(path);
  EXPECT_EQ(stats.records, 5u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_TRUE(stats.damage.empty()) << stats.damage;

  // AttachFile repairs the tail, then write-through appends new commits.
  FeedbackStore writer;
  stats = writer.LoadFrom(path);
  ASSERT_EQ(stats.records, 5u);
  ASSERT_TRUE(writer.AttachFile(path, &error)) << error;
  writer.Record(SampleRecord(50));
  EXPECT_EQ(writer.Commit(), 1u);

  FeedbackStore reread;
  stats = reread.LoadFrom(path);
  EXPECT_EQ(stats.records, 6u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_TRUE(stats.damage.empty()) << stats.damage;

  // A missing file is a clean no-op.
  std::remove(path.c_str());
  FeedbackStore empty;
  stats = empty.LoadFrom(path);
  EXPECT_FALSE(stats.existed);
  EXPECT_EQ(stats.records, 0u);
}

// --- The meta-optimizer ---

TEST(AdaptiveOptimizer, NeverWorseThanFallbackAndSameSeedIdentical) {
  Rng rng(903);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 8));
    QonInstance inst = RandomQonWorkload(n, &rng);

    FeedbackStore store;
    OptimizerOptions options;
    options.adaptive.store = &store;
    options.adaptive.seed = 17;

    OptimizerResult adaptive = AdaptiveQonOptimizer(inst, options, nullptr);
    OptimizerResult fallback = GreedyQonOptimizer(inst, options);
    ASSERT_TRUE(adaptive.feasible);
    ASSERT_TRUE(fallback.feasible);
    EXPECT_LE(adaptive.cost.Log2(), fallback.cost.Log2()) << "trial=" << trial;
    // The returned sequence really costs what the result claims.
    EXPECT_EQ(QonSequenceCost(inst, adaptive.sequence).Log2(),
              adaptive.cost.Log2());

    // Same seed + same (empty-committed) store state → identical bits;
    // the caller's Rng is never consumed, so passing one changes nothing.
    FeedbackStore store2;
    OptimizerOptions options2 = options;
    options2.adaptive.store = &store2;
    Rng unused(555);
    OptimizerResult again = AdaptiveQonOptimizer(inst, options2, &unused);
    EXPECT_EQ(adaptive.cost.Log2(), again.cost.Log2());
    EXPECT_EQ(adaptive.sequence, again.sequence);
    EXPECT_EQ(adaptive.evaluations, again.evaluations);
  }
}

TEST(AdaptiveOptimizer, QohNeverWorseThanFallback) {
  Rng rng(904);
  for (int trial = 0; trial < 6; ++trial) {
    QohInstance inst = RandomQohWorkload(6, &rng, 0.5);
    FeedbackStore store;
    QohOptimizerOptions options;
    options.adaptive.store = &store;
    QohOptimizerResult adaptive = AdaptiveQohOptimizer(inst, options, nullptr);
    QohOptimizerResult fallback = GreedyQohOptimizer(inst);
    if (!fallback.feasible) continue;
    ASSERT_TRUE(adaptive.feasible);
    EXPECT_LE(adaptive.cost.Log2(), fallback.cost.Log2()) << "trial=" << trial;
  }
}

TEST(AdaptiveOptimizer, LearnsAcrossCommits) {
  // After committing a batch of outcomes, decisions may change (the store
  // is warmer) but the guarantee must hold from ANY store state.
  Rng rng(905);
  FeedbackStore store;
  OptimizerOptions options;
  options.adaptive.store = &store;
  options.adaptive.min_trials = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      QonInstance inst = RandomQonWorkload(6, &rng);
      OptimizerResult adaptive = AdaptiveQonOptimizer(inst, options, nullptr);
      OptimizerResult fallback = GreedyQonOptimizer(inst, options);
      ASSERT_TRUE(adaptive.feasible);
      EXPECT_LE(adaptive.cost.Log2(), fallback.cost.Log2());
    }
    CommitAdaptiveFeedback(options.adaptive);
  }
  EXPECT_GT(store.CommittedSize(), 0u);
}

// --- Decision-log replay ---

TEST(AdaptiveReplay, ReconstructsEveryDecision) {
  std::string path = testing::TempDir() + "/aqo_adaptive_replay_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::RunLog::OpenGlobal(path));

  Rng rng(906);
  FeedbackStore store;
  OptimizerOptions options;
  options.adaptive.store = &store;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 5; ++i) {
      QonInstance inst = RandomQonWorkload(6, &rng);
      AdaptiveQonOptimizer(inst, options, nullptr);
    }
    CommitAdaptiveFeedback(options.adaptive);
  }
  obs::RunLog::CloseGlobal();

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  FeedbackStore replay_store;
  DecisionReplayStats stats = ReplayDecisionLog(in, &replay_store);
  EXPECT_EQ(stats.decisions, 10u);
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_TRUE(stats.error.empty()) << stats.error;
  // The replayed store converged to the original's committed state.
  EXPECT_EQ(replay_store.CommittedSize(), store.CommittedSize());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aqo
