// Tests for the genetic join-order optimizer.

#include "qo/genetic.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/optimizers.h"
#include "util/random.h"

namespace aqo {
namespace {

QonInstance RandomInstance(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng->UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.001, 1.0)));
  }
  return inst;
}

TEST(Genetic, ProducesValidSequences) {
  Rng rng(151);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 14));
    QonInstance inst = RandomInstance(n, 0.6, &rng);
    GeneticOptions options;
    options.generations = 30;
    OptimizerResult r = GeneticOptimizer(inst, &rng, options);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(IsPermutation(r.sequence, n));
    EXPECT_TRUE(QonSequenceCost(inst, r.sequence).ApproxEquals(r.cost, 1e-9));
  }
}

TEST(Genetic, NeverBeatsExactOptimum) {
  Rng rng(152);
  for (int trial = 0; trial < 10; ++trial) {
    QonInstance inst = RandomInstance(8, 0.7, &rng);
    OptimizerResult opt = DpQonOptimizer(inst);
    OptimizerResult ga = GeneticOptimizer(inst, &rng);
    ASSERT_TRUE(opt.feasible && ga.feasible);
    EXPECT_GE(ga.cost.Log2(), opt.cost.Log2() - 1e-9);
  }
}

TEST(Genetic, UsuallyFindsOptimumOnSmallInstances) {
  Rng rng(153);
  int hits = 0;
  for (int trial = 0; trial < 15; ++trial) {
    QonInstance inst = RandomInstance(7, 0.8, &rng);
    OptimizerResult opt = DpQonOptimizer(inst);
    OptimizerResult ga = GeneticOptimizer(inst, &rng);
    if (ga.cost.ApproxEquals(opt.cost, 1e-6)) ++hits;
  }
  EXPECT_GE(hits, 12);
}

TEST(Genetic, RespectsCartesianRestriction) {
  Rng rng(154);
  for (int trial = 0; trial < 10; ++trial) {
    QonInstance inst = RandomInstance(9, 0.6, &rng);
    if (!inst.graph().IsConnected()) continue;
    GeneticOptions options;
    options.base.forbid_cartesian = true;
    options.generations = 60;
    OptimizerResult r = GeneticOptimizer(inst, &rng, options);
    if (r.feasible) {
      EXPECT_FALSE(HasCartesianProduct(inst.graph(), r.sequence));
    }
  }
}

TEST(Genetic, BeatsRandomSamplingAtEqualBudget) {
  Rng rng(155);
  int wins = 0, trials = 12;
  for (int t = 0; t < trials; ++t) {
    QonInstance inst = RandomInstance(16, 0.6, &rng);
    GeneticOptions options;
    options.population = 50;
    options.generations = 40;  // ~2000 evaluations
    OptimizerResult ga = GeneticOptimizer(inst, &rng, options);
    OptimizerOptions rs_options;
    rs_options.samples = 2000;
    OptimizerResult rs = RandomSamplingOptimizer(inst, &rng, rs_options);
    if (ga.feasible && rs.feasible && ga.cost <= rs.cost) ++wins;
  }
  EXPECT_GE(wins, trials / 2);
}

}  // namespace
}  // namespace aqo
