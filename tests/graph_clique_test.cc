#include "graph/clique.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/vertex_cover.h"
#include "util/random.h"

namespace aqo {
namespace {

// Reference O(2^n) maximum clique for cross-checking.
int MaxCliqueBrute(const Graph& g) {
  int n = g.NumVertices();
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> members;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) members.push_back(i);
    }
    if (static_cast<int>(members.size()) > best && g.IsClique(members)) {
      best = static_cast<int>(members.size());
    }
  }
  return best;
}

TEST(MaxClique, EmptyAndTrivial) {
  EXPECT_TRUE(MaxClique(Graph(0)).clique.empty());
  EXPECT_EQ(MaxClique(Graph(3)).clique.size(), 1u);  // no edges: singleton
  EXPECT_EQ(MaxClique(Graph::Complete(7)).clique.size(), 7u);
}

TEST(MaxClique, KnownStructures) {
  EXPECT_EQ(MaxClique(Chain(10)).clique.size(), 2u);
  EXPECT_EQ(MaxClique(Cycle(9)).clique.size(), 2u);
  EXPECT_EQ(MaxClique(Cycle(3)).clique.size(), 3u);
  EXPECT_EQ(MaxClique(Star(8)).clique.size(), 2u);
}

TEST(MaxClique, MatchesBruteForceOnRandomGraphs) {
  Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 14));
    Graph g = Gnp(n, rng.UniformReal(0.1, 0.9), &rng);
    MaxCliqueResult r = MaxClique(g);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(static_cast<int>(r.clique.size()), MaxCliqueBrute(g))
        << "n=" << n << " trial=" << trial;
  }
}

TEST(MaxClique, FindsPlantedClique) {
  Rng rng(22);
  std::vector<int> planted;
  Graph g = PlantedClique(45, 15, 0.25, &rng, &planted);
  MaxCliqueResult r = MaxClique(g);
  EXPECT_GE(r.clique.size(), 15u);
}

TEST(MaxClique, TargetStopsEarly) {
  Rng rng(23);
  Graph g = PlantedClique(40, 14, 0.3, &rng);
  MaxCliqueResult full = MaxClique(g);
  MaxCliqueResult targeted = MaxClique(g, 0, 5);
  EXPECT_GE(targeted.clique.size(), 5u);
  EXPECT_LE(targeted.nodes_explored, full.nodes_explored);
}

TEST(MaxClique, NodeLimitReported) {
  Rng rng(24);
  Graph g = Gnp(40, 0.8, &rng);
  MaxCliqueResult r = MaxClique(g, 3);
  EXPECT_FALSE(r.exact);
  EXPECT_TRUE(g.IsClique(r.clique));
}

TEST(HasCliqueOfSize, Thresholds) {
  Graph g = Graph::Complete(6);
  EXPECT_TRUE(HasCliqueOfSize(g, 6));
  EXPECT_FALSE(HasCliqueOfSize(g, 7));
  EXPECT_TRUE(HasCliqueOfSize(g, 0));
  Graph h = Chain(6);
  EXPECT_TRUE(HasCliqueOfSize(h, 2));
  EXPECT_FALSE(HasCliqueOfSize(h, 3));
}

TEST(GreedyClique, AlwaysReturnsClique) {
  Rng rng(25);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = Gnp(30, rng.UniformReal(0.1, 0.9), &rng);
    std::vector<int> c = GreedyClique(g, &rng);
    EXPECT_TRUE(g.IsClique(c));
    EXPECT_GE(c.size(), 1u);
  }
}

TEST(GreedyClique, NearOptimalOnDenseClass) {
  Rng rng(26);
  std::vector<int> planted;
  Graph g = CliqueClassGraph(45, 13, 1.0, 30, &rng, &planted);
  std::vector<int> c = GreedyClique(g, &rng, 16);
  // The planted clique dominates such dense instances; greedy should get
  // close.
  EXPECT_GE(c.size(), 20u);
}

TEST(VertexCover, ExactOnKnownGraphs) {
  EXPECT_EQ(MinVertexCoverSize(Graph(4)), 0);
  EXPECT_EQ(MinVertexCoverSize(Graph::Complete(5)), 4);
  EXPECT_EQ(MinVertexCoverSize(Chain(5)), 2);
  EXPECT_EQ(MinVertexCoverSize(Star(7)), 1);
  EXPECT_EQ(MinVertexCoverSize(Cycle(6)), 3);
  EXPECT_EQ(MinVertexCoverSize(Cycle(7)), 4);
}

TEST(VertexCover, ComplementOfCliqueIdentity) {
  // For any graph, minVC = n - max independent set = n - omega(complement).
  Rng rng(27);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 12));
    Graph g = Gnp(n, rng.UniformReal(0.2, 0.8), &rng);
    int vc = MinVertexCoverSize(g);
    int omega_comp = static_cast<int>(MaxClique(g.Complement()).clique.size());
    EXPECT_EQ(vc, n - omega_comp);
  }
}

TEST(VertexCover, ApproxIsCoverWithinFactor2) {
  Rng rng(28);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = Gnp(14, 0.4, &rng);
    std::vector<int> cover = ApproxVertexCover(g);
    int exact = MinVertexCoverSize(g);
    EXPECT_LE(static_cast<int>(cover.size()), 2 * exact);
  }
}

}  // namespace
}  // namespace aqo
