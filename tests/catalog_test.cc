// Tests for the statistics catalog and selectivity derivation.

#include "qo/catalog.h"

#include <gtest/gtest.h>

#include "qo/optimizers.h"
#include "util/random.h"

namespace aqo {
namespace {

Catalog TwoTableCatalog(int64_t ndv_a, int64_t ndv_b, double a_min = 0,
                        double a_max = 1000, double b_min = 0,
                        double b_max = 1000) {
  Catalog catalog;
  TableStats a;
  a.name = "a";
  a.rows = 10000;
  a.columns.push_back({"x", ndv_a, a_min, a_max, {}});
  catalog.AddTable(std::move(a));
  TableStats b;
  b.name = "b";
  b.rows = 50000;
  b.columns.push_back({"y", ndv_b, b_min, b_max, {}});
  catalog.AddTable(std::move(b));
  return catalog;
}

TEST(Catalog, LookupAndValidation) {
  Catalog c = TwoTableCatalog(10, 20);
  EXPECT_EQ(c.NumTables(), 2);
  EXPECT_EQ(c.TableIndex("a"), 0);
  EXPECT_EQ(c.TableIndex("b"), 1);
  EXPECT_EQ(c.Column("a", "x").ndv, 10);
  EXPECT_EQ(c.table(1).rows, 50000);
}

TEST(Selectivity, ContainmentAssumptionWithoutHistograms) {
  Catalog c = TwoTableCatalog(100, 400);
  double sel = EstimateJoinSelectivity(c, {"a", "x", "b", "y"});
  EXPECT_NEAR(sel, 1.0 / 400.0, 1e-12);
  // Symmetric.
  EXPECT_NEAR(EstimateJoinSelectivity(c, {"b", "y", "a", "x"}), sel, 1e-15);
}

TEST(Selectivity, DisjointRangesCollapse) {
  Catalog c = TwoTableCatalog(100, 100, 0, 10, 20, 30);
  EXPECT_EQ(EstimateJoinSelectivity(c, {"a", "x", "b", "y"}),
            kMinDerivedSelectivity);
}

TEST(Selectivity, PartialOverlapScalesMassAndNdv) {
  // a: [0, 100], b: [50, 150]; overlap [50, 100] = half of each range.
  Catalog c = TwoTableCatalog(100, 100, 0, 100, 50, 150);
  double sel = EstimateJoinSelectivity(c, {"a", "x", "b", "y"});
  // mass = 0.5 each; ndv in overlap = 50 -> sel = 0.25 / 50.
  EXPECT_NEAR(sel, 0.25 / 50.0, 1e-12);
}

TEST(Selectivity, HistogramSkewMatters) {
  Catalog skewed;
  TableStats a;
  a.name = "a";
  a.rows = 1000;
  // All of a's mass in the first half of [0, 100].
  a.columns.push_back({"x", 100, 0, 100, {0.5, 0.5, 0.0, 0.0}});
  skewed.AddTable(std::move(a));
  TableStats b;
  b.name = "b";
  b.rows = 1000;
  b.columns.push_back({"y", 100, 50, 150, {}});
  skewed.AddTable(std::move(b));
  // Overlap [50, 100]: a has zero mass there -> floor selectivity.
  EXPECT_EQ(EstimateJoinSelectivity(skewed, {"a", "x", "b", "y"}),
            kMinDerivedSelectivity);
}

TEST(Selectivity, AlwaysInUnitInterval) {
  Rng rng(201);
  for (int trial = 0; trial < 50; ++trial) {
    Catalog c = TwoTableCatalog(rng.UniformInt(1, 1000), rng.UniformInt(1, 1000),
                                rng.UniformReal(0, 100), rng.UniformReal(100, 200),
                                rng.UniformReal(0, 100), rng.UniformReal(100, 200));
    double sel = EstimateJoinSelectivity(c, {"a", "x", "b", "y"});
    EXPECT_GE(sel, kMinDerivedSelectivity);
    EXPECT_LE(sel, 1.0);
  }
}

TEST(BuildQonInstance, StarSchemaOptimizes) {
  Rng rng(202);
  std::vector<EquiJoin> joins;
  Catalog catalog = RandomStarSchema(6, 1000000, &rng, &joins);
  EXPECT_EQ(catalog.NumTables(), 7);
  EXPECT_EQ(joins.size(), 6u);
  QonInstance inst = BuildQonInstance(catalog, joins);
  EXPECT_EQ(inst.NumRelations(), 7);
  // Star shape: the fact table (last index) touches all dimensions.
  int fact = catalog.TableIndex("fact");
  EXPECT_EQ(inst.graph().Degree(fact), 6);
  OptimizerResult opt = DpQonOptimizer(inst);
  ASSERT_TRUE(opt.feasible);
  OptimizerResult greedy = GreedyQonOptimizer(inst);
  EXPECT_GE(greedy.cost.Log2(), opt.cost.Log2() - 1e-9);
}

TEST(BuildQonInstance, MultiplePredicatesMultiply) {
  Catalog catalog;
  TableStats a;
  a.name = "a";
  a.rows = 100;
  a.columns.push_back({"x", 10, 0, 10, {}});
  a.columns.push_back({"z", 5, 0, 10, {}});
  catalog.AddTable(std::move(a));
  TableStats b;
  b.name = "b";
  b.rows = 100;
  b.columns.push_back({"y", 10, 0, 10, {}});
  b.columns.push_back({"w", 5, 0, 10, {}});
  catalog.AddTable(std::move(b));
  QonInstance one = BuildQonInstance(catalog, {{"a", "x", "b", "y"}});
  QonInstance two = BuildQonInstance(
      catalog, {{"a", "x", "b", "y"}, {"a", "z", "b", "w"}});
  EXPECT_LT(two.selectivity(0, 1).Log2(), one.selectivity(0, 1).Log2());
  EXPECT_NEAR(two.selectivity(0, 1).ToLinear(), 0.1 * 0.2, 1e-12);
}

using CatalogDeathTest = ::testing::Test;

TEST(CatalogDeathTest, RejectsBadMetadata) {
  Catalog c = TwoTableCatalog(10, 10);
  EXPECT_DEATH(c.TableIndex("missing"), "unknown table");
  EXPECT_DEATH(c.Column("a", "missing"), "unknown column");
  TableStats dup;
  dup.name = "a";
  dup.rows = 1;
  EXPECT_DEATH(c.AddTable(std::move(dup)), "duplicate table");
  TableStats bad_hist;
  bad_hist.name = "h";
  bad_hist.rows = 10;
  bad_hist.columns.push_back({"c", 5, 0, 10, {0.5, 0.2}});  // sums to 0.7
  EXPECT_DEATH(c.AddTable(std::move(bad_hist)), "sum to 1");
}

}  // namespace
}  // namespace aqo
