// Tests for the SAT substrate: CNF structures, generators, DPLL, WalkSAT.

#include <gtest/gtest.h>

#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "sat/walksat.h"
#include "util/random.h"

namespace aqo {
namespace {

// Reference exhaustive satisfiability check.
bool SatisfiableBrute(const CnfFormula& f) {
  int n = f.num_vars();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Assignment a(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) a[static_cast<size_t>(v)] = (mask >> v) & 1;
    if (f.IsSatisfiedBy(a)) return true;
  }
  return false;
}

int MaxSatBrute(const CnfFormula& f) {
  int n = f.num_vars();
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Assignment a(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) a[static_cast<size_t>(v)] = (mask >> v) & 1;
    best = std::max(best, f.CountSatisfied(a));
  }
  return best;
}

TEST(Cnf, EvalAndCounting) {
  CnfFormula f(3);
  f.AddClause3(1, 2, 3);
  f.AddClause3(-1, -2, -3);
  f.AddClause({-1, 2});
  Assignment a = {true, false, false};
  EXPECT_EQ(f.CountSatisfied(a), 2);
  EXPECT_FALSE(f.IsSatisfiedBy(a));
  Assignment b = {false, true, false};
  EXPECT_TRUE(f.IsSatisfiedBy(b));
  EXPECT_TRUE(f.IsThreeCnf());
}

TEST(Cnf, OccurrenceCounting) {
  CnfFormula f(3);
  f.AddClause3(1, -1, 2);  // var 1 twice in one clause counts once
  f.AddClause3(1, 2, 3);
  EXPECT_EQ(f.VariableOccurrences(), (std::vector<int>{2, 2, 1}));
  EXPECT_EQ(f.MaxVariableOccurrence(), 2);
}

TEST(Dpll, SimpleSatAndUnsat) {
  CnfFormula sat(2);
  sat.AddClause({1, 2});
  sat.AddClause({-1, 2});
  DpllResult r = SolveDpll(sat);
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_TRUE(sat.IsSatisfiedBy(*r.assignment));

  CnfFormula unsat(1);
  unsat.AddClause({1});
  unsat.AddClause({-1});
  EXPECT_FALSE(SolveDpll(unsat).assignment.has_value());
}

TEST(Dpll, MatchesBruteForceOnRandom) {
  Rng rng(31);
  for (int trial = 0; trial < 120; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 12));
    int m = static_cast<int>(rng.UniformInt(1, 50));
    CnfFormula f = RandomThreeSat(n, m, &rng);
    DpllResult r = SolveDpll(f);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.assignment.has_value(), SatisfiableBrute(f))
        << "n=" << n << " m=" << m << " trial=" << trial;
  }
}

TEST(Dpll, PlantedInstancesAreSat) {
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    Assignment hidden;
    CnfFormula f = PlantedSatisfiableThreeSat(20, 80, &rng, &hidden);
    EXPECT_TRUE(f.IsSatisfiedBy(hidden));
    EXPECT_TRUE(SolveDpll(f).assignment.has_value());
  }
}

TEST(Dpll, DecisionLimitAborts) {
  Rng rng(33);
  CnfFormula f = RandomThreeSat(60, 258, &rng);  // near threshold, hard-ish
  DpllResult r = SolveDpll(f, 1);
  // Either solved within one decision or reported incomplete.
  EXPECT_TRUE(r.complete || !r.assignment.has_value());
}

TEST(MaxSat, MatchesBruteForce) {
  Rng rng(34);
  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 10));
    int m = static_cast<int>(rng.UniformInt(1, 30));
    CnfFormula f = RandomThreeSat(std::max(n, 3), m, &rng);
    EXPECT_EQ(MaxSatisfiableClauses(f), MaxSatBrute(f));
  }
}

TEST(WalkSat, FindsModelsOfEasyFormulas) {
  Rng rng(35);
  int found = 0;
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula f = PlantedSatisfiableThreeSat(25, 60, &rng);
    WalkSatResult r = RunWalkSat(f, &rng, 20000);
    EXPECT_EQ(r.satisfied, f.CountSatisfied(r.assignment));
    found += r.found_model ? 1 : 0;
  }
  EXPECT_GE(found, 8);  // local search should crack most easy instances
}

TEST(WalkSat, ReportsBestOnUnsat) {
  CnfFormula f(1);
  f.AddClause({1});
  f.AddClause({-1});
  Rng rng(36);
  WalkSatResult r = RunWalkSat(f, &rng, 100);
  EXPECT_FALSE(r.found_model);
  EXPECT_EQ(r.satisfied, 1);
}

TEST(BoundOccurrences, ProducesThreeSat13) {
  Rng rng(37);
  CnfFormula f = RandomThreeSat(8, 120, &rng);  // heavy repetition
  EXPECT_GT(f.MaxVariableOccurrence(), 13);
  CnfFormula bounded = BoundOccurrences(f, 13);
  EXPECT_LE(bounded.MaxVariableOccurrence(), 13);
  EXPECT_TRUE(bounded.IsThreeCnf());
}

TEST(BoundOccurrences, PreservesSatisfiability) {
  Rng rng(38);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    int m = static_cast<int>(rng.UniformInt(5, 40));
    CnfFormula f = RandomThreeSat(n, m, &rng);
    CnfFormula bounded = BoundOccurrences(f, 3);
    EXPECT_EQ(SolveDpll(f).assignment.has_value(),
              SolveDpll(bounded).assignment.has_value())
        << "trial=" << trial;
  }
}

TEST(BoundOccurrences, NoSplitWhenAlreadyBounded) {
  Rng rng(39);
  CnfFormula f = RandomThreeSat(30, 20, &rng);
  if (f.MaxVariableOccurrence() <= 13) {
    CnfFormula bounded = BoundOccurrences(f, 13);
    EXPECT_EQ(bounded.NumClauses(), f.NumClauses());
    EXPECT_EQ(bounded.num_vars(), f.num_vars());
  }
}

TEST(HardFormulas, PigeonholeIsUnsatAndCostly) {
  for (int holes : {1, 2, 3}) {
    CnfFormula f = PigeonholeFormula(holes);
    DpllResult r = SolveDpll(f);
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.assignment.has_value()) << "PHP must be unsatisfiable";
  }
  // Exactly `holes` pigeons fit: removing one pigeon's clause set makes it
  // satisfiable — checked via MaxSAT: all but one at-least-one clause can
  // be met.
  CnfFormula f = PigeonholeFormula(3);
  EXPECT_EQ(MaxSatisfiableClauses(f), f.NumClauses() - 1);
}

TEST(HardFormulas, PigeonholeDecisionsGrow) {
  uint64_t previous = 0;
  for (int holes : {2, 3, 4}) {
    DpllResult r = SolveDpll(PigeonholeFormula(holes));
    EXPECT_FALSE(r.assignment.has_value());
    EXPECT_GE(r.decisions, previous);
    previous = r.decisions;
  }
  EXPECT_GT(previous, 10u);  // PHP(5,4) is already nontrivial
}

TEST(HardFormulas, XorChainsSatisfiableIndividually) {
  for (int k : {2, 3, 6, 10}) {
    for (bool parity : {false, true}) {
      CnfFormula f = XorChainFormula(k, parity);
      DpllResult r = SolveDpll(f);
      ASSERT_TRUE(r.assignment.has_value()) << "k=" << k;
      // Verify the parity of the satisfying assignment's chain inputs.
      int ones = 0;
      for (int v = 1; v <= k; ++v) ones += (*r.assignment)[static_cast<size_t>(v - 1)];
      EXPECT_EQ(ones % 2 == 1, parity);
    }
  }
}

TEST(HardFormulas, ContradictoryXorChainsUnsat) {
  // Same inputs constrained to both parities: unsatisfiable.
  CnfFormula even = XorChainFormula(6, false);
  CnfFormula both(even.num_vars() + 5);  // 5 more auxiliaries for the odd copy
  for (const Clause& c : even.clauses()) both.AddClause(c);
  // Re-encode the odd chain with fresh auxiliaries 12..16 over inputs 1..6.
  int aux = 11;
  auto emit = [&both](int a, int b, int out) {
    both.AddClause({-a, -b, -out});
    both.AddClause({a, b, -out});
    both.AddClause({a, -b, out});
    both.AddClause({-a, b, out});
  };
  emit(1, 2, aux + 1);
  for (int i = 2; i < 6; ++i) emit(aux + i - 1, i + 1, aux + i);
  both.AddClause({aux + 5});
  EXPECT_FALSE(SolveDpll(both).assignment.has_value());
}

}  // namespace
}  // namespace aqo
