#include "util/bigint.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/random.h"

namespace aqo {
namespace {

using I128 = __int128;

BigInt FromI128(I128 v) {
  bool neg = v < 0;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
                              : static_cast<unsigned __int128>(v);
  BigInt r = BigInt::FromUint64(static_cast<uint64_t>(mag >> 64));
  r = (r << 64) + BigInt::FromUint64(static_cast<uint64_t>(mag));
  return neg ? -r : r;
}

std::string I128ToString(I128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  std::string s;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
                              : static_cast<unsigned __int128>(v);
  while (mag != 0) {
    s.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  }
  if (neg) s.push_back('-');
  std::reverse(s.begin(), s.end());
  return s;
}

TEST(BigInt, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z + z, z);
  EXPECT_EQ(z * BigInt(12345), z);
}

TEST(BigInt, SmallValues) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
}

TEST(BigInt, FromStringRoundTrip) {
  for (const char* s :
       {"0", "1", "-1", "999999999999999999999999999999",
        "-123456789012345678901234567890123456789", "18446744073709551616"}) {
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
  EXPECT_EQ(BigInt::FromString("+17").ToString(), "17");
  EXPECT_EQ(BigInt::FromString("007").ToString(), "7");
}

TEST(BigInt, AdditionMatchesInt128) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    I128 a = static_cast<I128>(rng.Next()) * (rng.Bernoulli(0.5) ? 1 : -1);
    I128 b = static_cast<I128>(rng.Next()) * (rng.Bernoulli(0.5) ? 1 : -1);
    EXPECT_EQ((FromI128(a) + FromI128(b)).ToString(), I128ToString(a + b));
    EXPECT_EQ((FromI128(a) - FromI128(b)).ToString(), I128ToString(a - b));
  }
}

TEST(BigInt, MultiplicationMatchesInt128) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = rng.UniformInt(-1000000000, 1000000000) * rng.UniformInt(0, 1 << 20);
    int64_t b = rng.UniformInt(-1000000000, 1000000000);
    I128 prod = static_cast<I128>(a) * b;
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToString(), I128ToString(prod));
  }
}

TEST(BigInt, DivisionMatchesInt128) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    I128 a = static_cast<I128>(rng.Next()) * static_cast<int64_t>(rng.Next() >> 40);
    if (rng.Bernoulli(0.5)) a = -a;
    int64_t b = rng.UniformInt(1, int64_t{1} << 40) * (rng.Bernoulli(0.5) ? 1 : -1);
    EXPECT_EQ((FromI128(a) / BigInt(b)).ToString(), I128ToString(a / b));
    EXPECT_EQ((FromI128(a) % BigInt(b)).ToString(), I128ToString(a % b));
  }
}

TEST(BigInt, DivisionLargeDivisor) {
  // Multi-limb divisor exercises the shift-subtract path.
  BigInt a = BigInt::FromString("123456789012345678901234567890123456789012345678901234567890");
  BigInt b = BigInt::FromString("9876543210987654321098765432109");
  BigInt q = a / b;
  BigInt r = a % b;
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r >= BigInt(0) && r < b);
}

TEST(BigInt, DivModIdentityRandomized) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    BigInt a = 1, b = 1;
    int limbs_a = static_cast<int>(rng.UniformInt(1, 6));
    int limbs_b = static_cast<int>(rng.UniformInt(1, 4));
    for (int l = 0; l < limbs_a; ++l)
      a = (a << 61) + BigInt::FromUint64(rng.Next() >> 3);
    for (int l = 0; l < limbs_b; ++l)
      b = (b << 61) + BigInt::FromUint64(rng.Next() >> 3);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
  }
}

TEST(BigInt, Shifts) {
  BigInt one = 1;
  EXPECT_EQ((one << 200).BitLength(), 201);
  EXPECT_EQ(((one << 200) >> 200), one);
  EXPECT_EQ((BigInt(5) << 3).ToString(), "40");
  EXPECT_EQ((BigInt(40) >> 3).ToString(), "5");
  EXPECT_EQ((BigInt(40) >> 100).ToString(), "0");
}

TEST(BigInt, Pow) {
  EXPECT_EQ(BigInt(2).Pow(10).ToString(), "1024");
  EXPECT_EQ(BigInt(10).Pow(30).ToString(), "1000000000000000000000000000000");
  EXPECT_EQ(BigInt(7).Pow(0).ToString(), "1");
  EXPECT_EQ(BigInt(0).Pow(0).ToString(), "1");
  EXPECT_EQ(BigInt(-3).Pow(3).ToString(), "-27");
  EXPECT_EQ(BigInt(-3).Pow(4).ToString(), "81");
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt::FromString("99999999999999999999"),
            BigInt::FromString("100000000000000000000"));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, ToDoubleAndLog2) {
  EXPECT_DOUBLE_EQ(BigInt(1024).ToDouble(), 1024.0);
  EXPECT_DOUBLE_EQ(BigInt(-12).ToDouble(), -12.0);
  EXPECT_DOUBLE_EQ(BigInt(1024).Log2Abs(), 10.0);
  BigInt big = BigInt(1) << 500;
  EXPECT_DOUBLE_EQ(big.Log2Abs(), 500.0);
  EXPECT_NEAR((big * 3).Log2Abs(), 500.0 + std::log2(3.0), 1e-12);
}

TEST(BigInt, MixedArithmeticReadsNaturally) {
  BigInt x = 10;
  EXPECT_EQ((x * 3 + 1).ToString(), "31");
  EXPECT_EQ((x - 20).ToString(), "-10");
}

}  // namespace
}  // namespace aqo
