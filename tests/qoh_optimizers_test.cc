// Tests for the QO_H heuristic suite and the NL-only polynomial star
// optimizer (the Ibaraki-Kameda contrast to SQO-CP's NP-completeness).

#include "qo/qoh_optimizers.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qoh.h"
#include "sqo/star_query.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(QohHeuristics, NeverBeatExhaustiveOptimum) {
  Rng rng(191);
  for (int trial = 0; trial < 12; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 6));
    QohInstance inst = RandomQohWorkload(n, &rng, rng.UniformReal(0.2, 1.2));
    QohOptimizerResult exact = ExhaustiveQohOptimizer(inst);
    if (!exact.feasible) continue;
    QohOptimizerOptions sample_options;
    sample_options.samples = 40;
    QohOptimizerOptions ii_options;
    ii_options.restarts = 2;
    QohOptimizerOptions sa_options;
    sa_options.sa.iterations = 500;
    sa_options.sa.restarts = 1;
    for (const QohOptimizerResult& r :
         {RandomSamplingQohOptimizer(inst, &rng, sample_options),
          IterativeImprovementQohOptimizer(inst, &rng, ii_options),
          SimulatedAnnealingQohOptimizer(inst, &rng, sa_options)}) {
      if (!r.feasible) continue;
      EXPECT_GE(r.cost.Log2(), exact.cost.Log2() - 1e-9);
      // The reported decomposition reproduces the reported cost.
      PipelineCostResult check =
          DecompositionCost(inst, r.sequence, r.decomposition);
      ASSERT_TRUE(check.feasible);
      EXPECT_TRUE(check.cost.ApproxEquals(r.cost, 1e-9));
    }
  }
}

TEST(QohHeuristics, LocalSearchUsuallyFindsTheOptimum) {
  Rng rng(192);
  int hits = 0, total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    QohInstance inst = RandomQohWorkload(5, &rng, 0.5);
    QohOptimizerResult exact = ExhaustiveQohOptimizer(inst);
    if (!exact.feasible) continue;
    ++total;
    QohOptimizerOptions ii_options;
    ii_options.restarts = 4;
    QohOptimizerResult ii =
        IterativeImprovementQohOptimizer(inst, &rng, ii_options);
    hits += ii.feasible && ii.cost.ApproxEquals(exact.cost, 1e-6);
  }
  EXPECT_GE(hits * 4, total * 3);  // >= 75%
}

TEST(QohHeuristics, SentinelFirstRespectedOnGapInstances) {
  Graph g = Graph::Complete(9);
  QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
  Rng rng(193);
  QohOptimizerOptions sample_options;
  sample_options.samples = 30;
  sample_options.sentinel_first = 0;
  QohOptimizerResult sampled =
      RandomSamplingQohOptimizer(gap.instance, &rng, sample_options);
  ASSERT_TRUE(sampled.feasible);
  EXPECT_EQ(sampled.sequence[0], 0);
  QohOptimizerOptions ii_options;
  ii_options.restarts = 2;
  ii_options.sentinel_first = 0;
  QohOptimizerResult ii =
      IterativeImprovementQohOptimizer(gap.instance, &rng, ii_options);
  ASSERT_TRUE(ii.feasible);
  EXPECT_EQ(ii.sequence[0], 0);
  // The heuristics respect the YES-side L bound region (complete graph).
  EXPECT_LE(ii.cost.Log2(), gap.LBound().Log2() + 4.0);
}

// --- NL-only star optimization ---

SqoCpInstance RandomStar(int s, Rng* rng) {
  SqoCpInstance inst;
  inst.num_satellites = s;
  inst.ks = 4;
  inst.central_tuples = rng->UniformInt(1, 60);
  inst.central_pages = rng->UniformInt(1, 60);
  for (int i = 0; i < s; ++i) {
    inst.tuples.push_back(rng->UniformInt(1, 100));
    inst.pages.push_back(rng->UniformInt(1, 100));
    inst.match.push_back(rng->UniformInt(1, 9));
    inst.w.push_back(rng->UniformInt(1, 50));
    inst.w0.push_back(rng->UniformInt(1, 50));
  }
  inst.budget = rng->UniformInt(1, 1000000);
  return inst;
}

// Brute force over NL-only plans.
BigInt BruteNlOnly(const SqoCpInstance& inst) {
  int s = inst.num_satellites;
  std::vector<int> sats;
  for (int i = 1; i <= s; ++i) sats.push_back(i);
  BigInt best;
  bool have = false;
  do {
    for (int start_case = 0; start_case <= 1; ++start_case) {
      SqoCpPlan plan;
      if (start_case == 0) {
        plan.sequence.push_back(0);
        plan.sequence.insert(plan.sequence.end(), sats.begin(), sats.end());
      } else {
        plan.sequence.push_back(sats[0]);
        plan.sequence.push_back(0);
        plan.sequence.insert(plan.sequence.end(), sats.begin() + 1, sats.end());
      }
      plan.methods.assign(static_cast<size_t>(s), JoinMethod::kNestedLoops);
      BigInt cost = SqoCpPlanCost(inst, plan);
      if (!have || cost < best) {
        have = true;
        best = cost;
      }
    }
  } while (std::next_permutation(sats.begin(), sats.end()));
  return best;
}

TEST(SqoNlOnly, RankSortMatchesBruteForce) {
  Rng rng(194);
  for (int trial = 0; trial < 60; ++trial) {
    int s = static_cast<int>(rng.UniformInt(1, 6));
    SqoCpInstance inst = RandomStar(s, &rng);
    SqoCpResult fast = SolveSqoNlOnly(inst);
    EXPECT_EQ(fast.best_cost, BruteNlOnly(inst)) << "trial=" << trial;
    for (JoinMethod m : fast.best_plan.methods) {
      EXPECT_EQ(m, JoinMethod::kNestedLoops);
    }
  }
}

TEST(SqoNlOnly, NeverBeatsTheMixedOptimum) {
  // Allowing sort-merge can only help: the NL-only optimum upper-bounds
  // the mixed one. (The converse choice is what Appendix B makes hard.)
  Rng rng(195);
  for (int trial = 0; trial < 30; ++trial) {
    SqoCpInstance inst = RandomStar(static_cast<int>(rng.UniformInt(1, 5)), &rng);
    SqoCpResult nl = SolveSqoNlOnly(inst);
    SqoCpResult mixed = SolveSqoCpExact(inst);
    EXPECT_GE(nl.best_cost, mixed.best_cost);
  }
}

TEST(SqoNlOnly, PolynomialAtScale) {
  // s = 2000 satellites: the rank sort must breeze through where the 2^s
  // DP could not even allocate its table.
  Rng rng(196);
  SqoCpInstance inst = RandomStar(2000, &rng);
  SqoCpResult fast = SolveSqoNlOnly(inst);
  EXPECT_EQ(fast.best_plan.sequence.size(), 2001u);
}

}  // namespace
}  // namespace aqo
