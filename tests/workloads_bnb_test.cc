// Tests for the workload generators and the branch & bound optimizer, plus
// Karatsuba and the Appendix B sort-regime validator.

#include <gtest/gtest.h>

#include "qo/bnb.h"
#include "qo/optimizers.h"
#include "qo/workloads.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/bigint.h"
#include "util/random.h"

namespace aqo {
namespace {

TEST(Workloads, ShapesHaveExpectedGraphs) {
  Rng rng(171);
  WorkloadOptions options;
  options.shape = WorkloadShape::kChain;
  EXPECT_EQ(RandomQonWorkload(10, &rng, options).graph().NumEdges(), 9);
  options.shape = WorkloadShape::kStar;
  EXPECT_EQ(RandomQonWorkload(10, &rng, options).graph().Degree(0), 9);
  options.shape = WorkloadShape::kCycle;
  EXPECT_EQ(RandomQonWorkload(10, &rng, options).graph().NumEdges(), 10);
  options.shape = WorkloadShape::kClique;
  EXPECT_EQ(RandomQonWorkload(10, &rng, options).graph().NumEdges(), 45);
  options.shape = WorkloadShape::kTree;
  QonInstance tree = RandomQonWorkload(10, &rng, options);
  EXPECT_EQ(tree.graph().NumEdges(), 9);
  EXPECT_TRUE(tree.graph().IsConnected());
}

TEST(Workloads, InstancesValidateAndRespectBounds) {
  Rng rng(172);
  WorkloadOptions options;
  options.min_size = 100.0;
  options.max_size = 1000.0;
  options.min_selectivity = 0.01;
  options.max_selectivity = 0.5;
  for (int trial = 0; trial < 20; ++trial) {
    QonInstance inst = RandomQonWorkload(8, &rng, options);
    inst.Validate();
    for (int i = 0; i < 8; ++i) {
      EXPECT_GE(inst.size(i).ToLinear(), 100.0 * (1 - 1e-9));
      EXPECT_LE(inst.size(i).ToLinear(), 1000.0 * (1 + 1e-9));
    }
    for (const auto& [u, v] : inst.graph().Edges()) {
      double s = inst.selectivity(u, v).ToLinear();
      EXPECT_GE(s, 0.01 * (1 - 1e-9));
      EXPECT_LE(s, 0.5 * (1 + 1e-9));
    }
  }
}

TEST(Workloads, QohWorkloadFeasibleAtFullMemory) {
  Rng rng(173);
  QohInstance inst = RandomQohWorkload(8, &rng, /*memory_fraction=*/1.5);
  inst.Validate();
  JoinSequence seq = IdentitySequence(8);
  EXPECT_TRUE(OptimalDecomposition(inst, seq).feasible);
}

TEST(BranchAndBound, MatchesDpOnRandomInstances) {
  Rng rng(174);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 12));
    QonInstance inst = RandomQonWorkload(n, &rng);
    BnbResult bnb = BranchAndBoundQonOptimizer(inst);
    OptimizerResult dp = DpQonOptimizer(inst);
    ASSERT_TRUE(bnb.proven_optimal);
    ASSERT_TRUE(dp.feasible);
    EXPECT_TRUE(bnb.result.cost.ApproxEquals(dp.cost, 1e-9))
        << "trial=" << trial << " n=" << n;
  }
}

TEST(BranchAndBound, MatchesDpWithCartesianRestriction) {
  Rng rng(175);
  OptimizerOptions options;
  options.forbid_cartesian = true;
  for (int trial = 0; trial < 20; ++trial) {
    WorkloadOptions wo;
    wo.edge_probability = 0.6;
    QonInstance inst = RandomQonWorkload(9, &rng, wo);
    BnbResult bnb = BranchAndBoundQonOptimizer(inst, 0, options);
    OptimizerResult dp = DpQonOptimizer(inst, options);
    ASSERT_EQ(bnb.result.feasible, dp.feasible);
    if (dp.feasible) {
      EXPECT_TRUE(bnb.result.cost.ApproxEquals(dp.cost, 1e-9));
      EXPECT_FALSE(HasCartesianProduct(inst.graph(), bnb.result.sequence));
    }
  }
}

TEST(BranchAndBound, NodeLimitYieldsAnytimeResult) {
  Rng rng(176);
  QonInstance inst = RandomQonWorkload(14, &rng);
  BnbResult limited = BranchAndBoundQonOptimizer(inst, 50);
  EXPECT_FALSE(limited.proven_optimal);
  EXPECT_TRUE(limited.result.feasible);  // greedy incumbent at minimum
  BnbResult full = BranchAndBoundQonOptimizer(inst);
  EXPECT_LE(full.result.cost.Log2(), limited.result.cost.Log2() + 1e-9);
}

TEST(BranchAndBound, PrunesFarBelowFactorial) {
  Rng rng(177);
  QonInstance inst = RandomQonWorkload(12, &rng);
  BnbResult bnb = BranchAndBoundQonOptimizer(inst);
  EXPECT_TRUE(bnb.proven_optimal);
  // 12! = 479M; dominance pruning caps nodes near the 2^12 subset count.
  EXPECT_LT(bnb.nodes, uint64_t{200000});
}

TEST(Karatsuba, MatchesIdentitiesOnHugeNumbers) {
  // (2^k + 1)^2 = 2^{2k} + 2^{k+1} + 1 at sizes that cross the threshold.
  for (int k : {1000, 3000, 5000}) {
    BigInt x = (BigInt(1) << k) + 1;
    BigInt expected = (BigInt(1) << (2 * k)) + (BigInt(1) << (k + 1)) + 1;
    EXPECT_EQ(x * x, expected) << "k=" << k;
  }
  // Random cross-check against the divmod identity.
  Rng rng(178);
  for (int trial = 0; trial < 10; ++trial) {
    BigInt a = 1, b = 1;
    for (int i = 0; i < 60; ++i) a = (a << 61) + BigInt::FromUint64(rng.Next());
    for (int i = 0; i < 40; ++i) b = (b << 61) + BigInt::FromUint64(rng.Next());
    BigInt p = a * b;
    EXPECT_EQ(p / a, b);
    EXPECT_EQ(p % a, BigInt(0));
  }
}

TEST(SortRegime, AppendixBInstancesQualify) {
  Rng rng(179);
  for (int trial = 0; trial < 10; ++trial) {
    SppcsInstance sppcs;
    int m = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < m; ++i) {
      sppcs.pairs.push_back(
          {BigInt(rng.UniformInt(2, 9)), BigInt(rng.UniformInt(1, 9))});
    }
    sppcs.l_bound = rng.UniformInt(1, 50);
    SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
    EXPECT_TRUE(red.instance.InTwoPassSortRegime());
  }
}

TEST(SortRegime, RejectsOutOfRangeSizes) {
  SqoCpInstance inst;
  inst.num_satellites = 1;
  inst.central_tuples = 100;
  inst.central_pages = 100;
  inst.tuples = {BigInt(10)};
  inst.pages = {BigInt(10)};  // 10 <= mem = 50: needs a 1-pass sort
  inst.match = {BigInt(2)};
  inst.w = {BigInt(1)};
  inst.w0 = {BigInt(1)};
  EXPECT_FALSE(inst.InTwoPassSortRegime());
}

}  // namespace
}  // namespace aqo
