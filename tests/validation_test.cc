// Failure-injection tests: invalid instances and misuse must be rejected
// loudly (AQO_CHECK aborts), never silently produce wrong reductions.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "reductions/clique_to_qoh.h"
#include "reductions/clique_to_qon.h"
#include "sat/cnf.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/log_double.h"
#include "util/random.h"

namespace aqo {
namespace {

using ValidationDeathTest = ::testing::Test;

TEST(ValidationDeathTest, LogDoubleRejectsBadInputs) {
  EXPECT_DEATH(LogDouble::FromLinear(-1.0), "check failed");
  LogDouble small = LogDouble::FromLinear(1.0);
  LogDouble big = LogDouble::FromLinear(2.0);
  EXPECT_DEATH(small - big, "negative result");
  EXPECT_DEATH(small / LogDouble::Zero(), "division by zero");
  EXPECT_DEATH(LogDouble::Zero().Pow(-1.0), "negative power");
}

TEST(ValidationDeathTest, QonInstanceInvariants) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  std::vector<LogDouble> sizes(3, LogDouble::FromLinear(10.0));
  QonInstance inst(g, sizes);
  // Selectivity on a non-edge.
  EXPECT_DEATH(inst.SetSelectivity(0, 2, LogDouble::FromLinear(0.5)),
               "non-edge");
  // Selectivity above one.
  EXPECT_DEATH(inst.SetSelectivity(0, 1, LogDouble::FromLinear(2.0)),
               "check failed");
  // Access cost outside [t_j s, t_j].
  inst.SetSelectivity(0, 1, LogDouble::FromLinear(0.5));
  EXPECT_DEATH(inst.SetAccessCost(0, 1, LogDouble::FromLinear(100.0)),
               "out of");
  EXPECT_DEATH(inst.SetAccessCost(0, 1, LogDouble::FromLinear(1.0)),
               "out of");
  // Zero relation size.
  EXPECT_DEATH(QonInstance(g, {LogDouble::Zero(), LogDouble::FromLinear(1.0),
                               LogDouble::FromLinear(1.0)}),
               "check failed");
}

TEST(ValidationDeathTest, CostFunctionsRejectNonPermutations) {
  Graph g = Graph::Complete(3);
  QonInstance inst(g, std::vector<LogDouble>(3, LogDouble::FromLinear(4.0)));
  EXPECT_DEATH(QonSequenceCost(inst, {0, 1}), "check failed");
  EXPECT_DEATH(QonSequenceCost(inst, {0, 1, 1}), "check failed");
  EXPECT_DEATH(QonSequenceCost(inst, {0, 1, 5}), "check failed");
}

TEST(ValidationDeathTest, QohInstanceInvariants) {
  Graph g = Graph::Complete(3);
  std::vector<LogDouble> sizes(3, LogDouble::FromLinear(16.0));
  EXPECT_DEATH(QohInstance(g, sizes, /*memory=*/-5.0), "check failed");
  EXPECT_DEATH(QohInstance(g, sizes, 100.0, /*eta=*/1.5), "check failed");
  QohInstance inst(g, sizes, 100.0);
  EXPECT_DEATH(inst.SetMemory(0.0), "check failed");
}

TEST(ValidationDeathTest, PipelineBoundsChecked) {
  Graph g = Graph::Complete(4);
  QohInstance inst(g, std::vector<LogDouble>(4, LogDouble::FromLinear(16.0)),
                   1000.0);
  JoinSequence seq = IdentitySequence(4);
  EXPECT_DEATH(OptimalPipelineCost(inst, seq, 0, 2), "check failed");
  EXPECT_DEATH(OptimalPipelineCost(inst, seq, 2, 1), "check failed");
  EXPECT_DEATH(OptimalPipelineCost(inst, seq, 1, 7), "check failed");
  PipelineDecomposition bad;
  bad.starts = {2};  // must start at join 1
  EXPECT_DEATH(DecompositionCost(inst, seq, bad), "must start at join 1");
}

TEST(ValidationDeathTest, ReductionsGuardTheirPreconditions) {
  Rng rng(161);
  Graph g = Gnp(10, 0.5, &rng);
  // alpha < 4.
  EXPECT_DEATH(
      ReduceCliqueToQon(g, QonGapParams{.c = 0.5, .d = 0.2, .log2_alpha = 1.0}),
      "alpha");
  // d >= c.
  EXPECT_DEATH(
      ReduceCliqueToQon(g, QonGapParams{.c = 0.5, .d = 0.6, .log2_alpha = 4.0}),
      "check failed");
  // f_H needs n divisible by 3 ...
  EXPECT_DEATH(ReduceTwoThirdsCliqueToQoh(Graph::Complete(10), QohGapParams{}),
               "divisible by 3");
  // ... and t exactly representable.
  QohGapParams big_alpha;
  big_alpha.log2_alpha = 30.0;
  EXPECT_DEATH(ReduceTwoThirdsCliqueToQoh(Graph::Complete(9), big_alpha),
               "exact in double");
}

TEST(ValidationDeathTest, SqoCpGuards) {
  SppcsInstance sppcs;
  sppcs.pairs = {{BigInt(1), BigInt(3)}};  // p < 2 violates the WLOG
  sppcs.l_bound = 5;
  EXPECT_DEATH(ReduceSppcsToSqoCp(sppcs), "p_i >= 2");
  sppcs.pairs = {{BigInt(3), BigInt(0)}};
  EXPECT_DEATH(ReduceSppcsToSqoCp(sppcs), "c_i >= 1");

  SqoCpInstance inst;
  inst.num_satellites = 1;
  inst.central_tuples = 5;
  inst.central_pages = 5;
  inst.tuples = {BigInt(10)};
  inst.pages = {BigInt(10)};
  inst.match = {BigInt(0)};  // zero match factor is invalid
  inst.w = {BigInt(1)};
  inst.w0 = {BigInt(1)};
  EXPECT_DEATH(inst.Validate(), "match factor");
}

TEST(ValidationDeathTest, CnfGuards) {
  CnfFormula f(2);
  EXPECT_DEATH(f.AddClause({}), "empty clause");
  EXPECT_DEATH(f.AddClause({0}), "check failed");
  EXPECT_DEATH(f.AddClause({3}), "out of range");
}

TEST(ValidationDeathTest, OptimizerSizeGuards) {
  Rng rng(162);
  Graph g = Gnp(12, 0.5, &rng);
  QonInstance inst(g, std::vector<LogDouble>(12, LogDouble::FromLinear(8.0)));
  EXPECT_DEATH(ExhaustiveQonOptimizer(inst), "n!");
}

}  // namespace
}  // namespace aqo
