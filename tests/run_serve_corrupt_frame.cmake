# Corrupt-frame regression for aqo_serve (see tests/CMakeLists.txt).
#
# Replays the committed fixtures:
#
#   frames_valid.bin   — req r0, ping p0, req r1, well framed;
#   frames_garbage.bin — the same stream with 9 bytes of high-bit garbage
#     spliced between the first and second frame.
#
# The serve loop must survive the garbage (exit 0), answer every real
# frame exactly as in the clean run, and flag the corrupt region with one
# `err ? parse: resynchronized after 9 bytes of frame garbage` frame —
# so the garbled run's stdout is the clean run's stdout plus exactly that
# one extra frame, which the size arithmetic below pins down.
#
# Usage: cmake -DAQO_SERVE=<bin> -DFIXTURES_DIR=<examples/fixtures>
#        -DWORK_DIR=<dir> -P run_serve_corrupt_frame.cmake

if(NOT AQO_SERVE OR NOT FIXTURES_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "AQO_SERVE, FIXTURES_DIR and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_serve tag input)
  execute_process(
    COMMAND "${AQO_SERVE}"
    INPUT_FILE "${input}"
    OUTPUT_FILE "${WORK_DIR}/${tag}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "aqo_serve (${tag}) exited with ${rc} — the frame loop must "
      "recover from malformed frames, not die")
  endif()
endfunction()

run_serve(valid "${FIXTURES_DIR}/frames_valid.bin")
run_serve(garbled "${FIXTURES_DIR}/frames_garbage.bin")

# The outputs are framed binary (length prefixes carry NUL bytes), so
# all content checks happen on hex encodings.
file(READ "${WORK_DIR}/valid.out" valid_out HEX)
file(READ "${WORK_DIR}/garbled.out" garbled_out HEX)

function(expect_marker tag text)
  string(HEX "${text}" marker_hex)
  string(FIND "${${tag}_out}" "${marker_hex}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${tag}.out is missing '${text}'")
  endif()
endfunction()

# Every real request was answered in both runs.
foreach(marker "ok r0 qon" "ok p0 pong" "ok r1 qon")
  expect_marker(valid "${marker}")
  expect_marker(garbled "${marker}")
endforeach()

# The clean run saw no garbage; the garbled run flagged exactly the
# spliced 9 bytes.
set(resync_payload
  "err ? parse: resynchronized after 9 bytes of frame garbage")
string(HEX "resynchronized" resync_marker_hex)
string(FIND "${valid_out}" "${resync_marker_hex}" at)
if(NOT at EQUAL -1)
  message(FATAL_ERROR "valid.out reports a resync on a clean stream")
endif()
expect_marker(garbled "${resync_payload}")

# The garbled stdout is the clean stdout plus exactly one extra frame:
# the 4-byte length prefix and the resync payload. Anything else means a
# real response changed under corruption.
file(SIZE "${WORK_DIR}/valid.out" valid_size)
file(SIZE "${WORK_DIR}/garbled.out" garbled_size)
string(LENGTH "${resync_payload}" resync_len)
math(EXPR want_size "${valid_size} + 4 + ${resync_len}")
if(NOT garbled_size EQUAL want_size)
  message(FATAL_ERROR
    "garbled.out is ${garbled_size} bytes, expected ${want_size} "
    "(valid.out ${valid_size} + one resync frame) — responses diverged "
    "beyond the flagged garbage")
endif()

message(STATUS "serve corrupt-frame recovery held")
